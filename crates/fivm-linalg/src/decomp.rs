//! Low-rank decomposition of update matrices (paper §5, §6.1).
//!
//! “An arbitrary update matrix can be decomposed into a sum of rank-1
//! matrices, each of them expressible as products of vectors” — the
//! factorizable updates that make LINVIEW-style maintenance `O(p²)`.
//! [`low_rank_decompose`] implements a greedy cross (skeleton)
//! decomposition: repeatedly pick the largest-magnitude pivot and
//! subtract the outer product of its row and column. For a matrix of
//! exact rank `r` this terminates in `r` steps.

use crate::matrix::Matrix;

/// Express a single-row update as rank-1 factors: `δA = e_row · dᵀ`
/// where `d` is the element-wise row change (the Fig. 6 one-row-update
/// workload).
pub fn row_update_factors(rows: usize, row: usize, diff: &[f64]) -> (Vec<f64>, Vec<f64>) {
    let mut e = vec![0.0; rows];
    e[row] = 1.0;
    (e, diff.to_vec())
}

/// Greedy cross decomposition of `delta` into at most `max_rank` rank-1
/// factors. Returns `None` if the residual after `max_rank` factors
/// exceeds `eps` (the update is not low-rank enough).
pub fn low_rank_decompose(
    delta: &Matrix,
    max_rank: usize,
    eps: f64,
) -> Option<Vec<(Vec<f64>, Vec<f64>)>> {
    let mut residual = delta.clone();
    let mut factors = Vec::new();
    for _ in 0..max_rank {
        if residual.max_abs() <= eps {
            return Some(factors);
        }
        // pivot = largest-magnitude entry
        let (mut pi, mut pj, mut pv) = (0, 0, 0.0f64);
        for i in 0..residual.rows() {
            for j in 0..residual.cols() {
                let v = residual.get(i, j);
                if v.abs() > pv.abs() {
                    (pi, pj, pv) = (i, j, v);
                }
            }
        }
        // u = column pj, v = row pi / pivot
        let u: Vec<f64> = (0..residual.rows()).map(|i| residual.get(i, pj)).collect();
        let v: Vec<f64> = (0..residual.cols())
            .map(|j| residual.get(pi, j) / pv)
            .collect();
        // residual -= u vᵀ
        let mut neg_u = u.clone();
        for x in &mut neg_u {
            *x = -*x;
        }
        residual.add_outer(&neg_u, &v);
        factors.push((u, v));
    }
    (residual.max_abs() <= eps).then_some(factors)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reconstruct(rows: usize, cols: usize, factors: &[(Vec<f64>, Vec<f64>)]) -> Matrix {
        let mut m = Matrix::zeros(rows, cols);
        for (u, v) in factors {
            m.add_outer(u, v);
        }
        m
    }

    #[test]
    fn row_update_is_rank_one() {
        let (u, v) = row_update_factors(4, 2, &[1.0, -2.0, 3.0]);
        let m = reconstruct(4, 3, &[(u, v)]);
        assert_eq!(m.get(2, 0), 1.0);
        assert_eq!(m.get(2, 1), -2.0);
        assert_eq!(m.get(0, 0), 0.0);
    }

    #[test]
    fn exact_rank_one_recovered_in_one_step() {
        let mut d = Matrix::zeros(5, 4);
        d.add_outer(&[1.0, 2.0, 0.0, -1.0, 0.5], &[3.0, 0.0, 1.0, 2.0]);
        let f = low_rank_decompose(&d, 1, 1e-12).expect("rank 1");
        assert_eq!(f.len(), 1);
        assert!(reconstruct(5, 4, &f).approx_eq(&d, 1e-12));
    }

    #[test]
    fn exact_rank_r_recovered() {
        let mut d = Matrix::zeros(6, 6);
        d.add_outer(
            &[1.0, 0.0, 2.0, 0.0, 0.0, 1.0],
            &[1.0, 1.0, 0.0, 0.0, 2.0, 0.0],
        );
        d.add_outer(
            &[0.0, 3.0, 0.0, 1.0, 0.0, 0.0],
            &[0.0, 1.0, 1.0, 0.0, 0.0, 1.0],
        );
        d.add_outer(
            &[1.0, 1.0, 1.0, 1.0, 1.0, 1.0],
            &[0.5, 0.0, 0.0, 0.5, 0.0, 0.0],
        );
        let f = low_rank_decompose(&d, 3, 1e-9).expect("rank 3");
        assert!(f.len() <= 3);
        assert!(reconstruct(6, 6, &f).approx_eq(&d, 1e-9));
    }

    #[test]
    fn full_rank_rejected_at_low_budget() {
        let d = Matrix::identity(8); // rank 8
        assert!(low_rank_decompose(&d, 3, 1e-9).is_none());
        // but accepted with enough budget
        let f = low_rank_decompose(&d, 8, 1e-9).expect("rank 8");
        assert!(reconstruct(8, 8, &f).approx_eq(&d, 1e-9));
    }

    #[test]
    fn zero_matrix_is_rank_zero() {
        let d = Matrix::zeros(4, 4);
        let f = low_rank_decompose(&d, 0, 1e-12).expect("rank 0");
        assert!(f.is_empty());
    }
}
