//! Matrix chain multiplication (paper §6.1).
//!
//! The optimal variable order for the chain query corresponds to the
//! optimal parenthesization of the product — the textbook dynamic
//! program ([CLRS], cited as [13] in the paper). [`multiply_chain`]
//! evaluates a chain using the DP order.

use crate::matrix::Matrix;

/// The minimal scalar-multiplication cost of multiplying a chain with
/// dimensions `dims` (matrix `i` is `dims[i] × dims[i+1]`), and the
/// split table `s[i][j]` = optimal split point of the subchain `i..=j`.
pub fn optimal_parenthesization(dims: &[usize]) -> (u64, Vec<Vec<usize>>) {
    let n = dims.len() - 1; // number of matrices
    let mut m = vec![vec![0u64; n]; n];
    let mut s = vec![vec![0usize; n]; n];
    for len in 2..=n {
        for i in 0..=(n - len) {
            let j = i + len - 1;
            m[i][j] = u64::MAX;
            for k in i..j {
                let cost = m[i][k] + m[k + 1][j] + (dims[i] * dims[k + 1] * dims[j + 1]) as u64;
                if cost < m[i][j] {
                    m[i][j] = cost;
                    s[i][j] = k;
                }
            }
        }
    }
    (if n == 0 { 0 } else { m[0][n - 1] }, s)
}

/// The optimal multiplication cost alone.
pub fn chain_cost(dims: &[usize]) -> u64 {
    optimal_parenthesization(dims).0
}

/// Multiply a chain of matrices in the DP-optimal order.
pub fn multiply_chain(mats: &[Matrix]) -> Matrix {
    assert!(!mats.is_empty(), "empty chain");
    let mut dims = Vec::with_capacity(mats.len() + 1);
    dims.push(mats[0].rows());
    for m in mats {
        assert_eq!(
            *dims.last().unwrap(),
            m.rows(),
            "chain dimensions must agree"
        );
        dims.push(m.cols());
    }
    let (_, s) = optimal_parenthesization(&dims);
    multiply_range(mats, &s, 0, mats.len() - 1)
}

fn multiply_range(mats: &[Matrix], s: &[Vec<usize>], i: usize, j: usize) -> Matrix {
    if i == j {
        return mats[i].clone();
    }
    let k = s[i][j];
    let left = multiply_range(mats, s, i, k);
    let right = multiply_range(mats, s, k + 1, j);
    left.matmul(&right)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The CLRS textbook instance: dims ⟨30,35,15,5,10,20,25⟩ has
    /// optimal cost 15125.
    #[test]
    fn clrs_example() {
        let dims = [30, 35, 15, 5, 10, 20, 25];
        assert_eq!(chain_cost(&dims), 15125);
    }

    #[test]
    fn square_chain_cost() {
        // k equal n×n matrices: (k−1)·n³ regardless of order
        assert_eq!(chain_cost(&[4, 4, 4, 4]), 2 * 64);
    }

    #[test]
    fn chain_product_matches_left_to_right() {
        let mats: Vec<Matrix> = vec![
            Matrix::from_fn(3, 4, |i, j| (i + 2 * j) as f64),
            Matrix::from_fn(4, 2, |i, j| (i as f64 - j as f64) * 0.5),
            Matrix::from_fn(2, 5, |i, j| ((i + 1) * (j + 1)) as f64 * 0.1),
            Matrix::from_fn(5, 3, |i, j| (i * j) as f64 - 1.0),
        ];
        let opt = multiply_chain(&mats);
        let mut naive = mats[0].clone();
        for m in &mats[1..] {
            naive = naive.matmul(m);
        }
        assert!(opt.approx_eq(&naive, 1e-9));
    }

    #[test]
    fn single_matrix_chain() {
        let m = Matrix::identity(3);
        assert!(multiply_chain(std::slice::from_ref(&m)).approx_eq(&m, 0.0));
    }

    #[test]
    fn skewed_dims_prefer_cheap_split() {
        // (10×1)(1×10)(10×1): left-first costs 10·1·10 + 10·10·1 = 200,
        // right-first costs 1·10·1 + 10·1·1 = 20.
        assert_eq!(chain_cost(&[10, 1, 10, 1]), 20);
    }
}
