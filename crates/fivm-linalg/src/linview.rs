//! Incremental matrix-chain maintenance (paper §6.1, Figure 6).
//!
//! Maintains `A = A₁ · A₂ · … · A_k` under updates to any `A_i`, with
//! the three strategies benchmarked in Figure 6:
//!
//! * [`ReEvalChain`] — recompute the whole product per update: `O(k·p³)`.
//! * [`FirstOrderChain`] — 1-IVM: `δA = A₁ ⋯ δA_i ⋯ A_k` with full
//!   matrix-matrix multiplications: `O(p³)` (same as DBT here).
//! * [`DenseChainIvm`] — F-IVM with factorizable updates: a rank-1
//!   change `δA_i = u·vᵀ` propagates through a balanced binary product
//!   tree as matrix-*vector* products, maintaining every internal
//!   product view in `O(p² log k)`; rank-r updates are sequences of
//!   rank-1 updates (`O(r·p² log k)`), recovering LINVIEW [33].

use crate::matrix::Matrix;

/// Re-evaluation: recompute the product on every update.
pub struct ReEvalChain {
    mats: Vec<Matrix>,
    product: Matrix,
}

impl ReEvalChain {
    /// Build from the initial chain.
    pub fn new(mats: Vec<Matrix>) -> Self {
        let product = crate::chain::multiply_chain(&mats);
        ReEvalChain { mats, product }
    }

    /// Apply a dense update to matrix `i` and recompute.
    pub fn apply(&mut self, i: usize, delta: &Matrix) {
        self.mats[i].add_assign(delta);
        self.product = crate::chain::multiply_chain(&self.mats);
    }

    /// The maintained product.
    pub fn product(&self) -> &Matrix {
        &self.product
    }
}

/// First-order IVM: `δA = prefix · δA_i · suffix`, all dense products.
pub struct FirstOrderChain {
    mats: Vec<Matrix>,
    product: Matrix,
}

impl FirstOrderChain {
    /// Build from the initial chain.
    pub fn new(mats: Vec<Matrix>) -> Self {
        let product = crate::chain::multiply_chain(&mats);
        FirstOrderChain { mats, product }
    }

    /// Apply a dense update to matrix `i`: one pass of matrix-matrix
    /// multiplications for the delta (the `O(p³)` 1-IVM cost of Fig. 6).
    pub fn apply(&mut self, i: usize, delta: &Matrix) {
        let mut acc = delta.clone();
        // prefix · δ (fold left)
        for k in (0..i).rev() {
            acc = self.mats[k].matmul(&acc);
        }
        // (prefix · δ) · suffix
        for k in (i + 1)..self.mats.len() {
            acc = acc.matmul(&self.mats[k]);
        }
        self.product.add_assign(&acc);
        self.mats[i].add_assign(delta);
    }

    /// The maintained product.
    pub fn product(&self) -> &Matrix {
        &self.product
    }
}

/// One node of the balanced product tree.
struct ChainNode {
    /// Range of leaf matrices `[lo, hi)` covered.
    lo: usize,
    hi: usize,
    left: Option<usize>,
    right: Option<usize>,
    /// The product `A_lo ⋯ A_{hi−1}`.
    prod: Matrix,
}

/// F-IVM over the matrix chain: a balanced binary tree of product views
/// (the “binary view tree of the lowest depth” of Example 6.1), each
/// maintained under factorized rank-1 updates.
pub struct DenseChainIvm {
    mats: Vec<Matrix>,
    nodes: Vec<ChainNode>,
    root: usize,
    /// Leaf index → tree node covering exactly that leaf.
    leaf_nodes: Vec<usize>,
}

impl DenseChainIvm {
    /// Build the balanced product tree over the initial chain.
    pub fn new(mats: Vec<Matrix>) -> Self {
        assert!(!mats.is_empty());
        let mut s = DenseChainIvm {
            leaf_nodes: vec![usize::MAX; mats.len()],
            mats,
            nodes: Vec::new(),
            root: 0,
        };
        s.root = s.build(0, s.mats.len());
        s
    }

    fn build(&mut self, lo: usize, hi: usize) -> usize {
        if hi - lo == 1 {
            let id = self.nodes.len();
            self.nodes.push(ChainNode {
                lo,
                hi,
                left: None,
                right: None,
                prod: self.mats[lo].clone(),
            });
            self.leaf_nodes[lo] = id;
            return id;
        }
        let mid = lo + (hi - lo) / 2;
        let l = self.build(lo, mid);
        let r = self.build(mid, hi);
        let prod = self.nodes[l].prod.matmul(&self.nodes[r].prod);
        let id = self.nodes.len();
        self.nodes.push(ChainNode {
            lo,
            hi,
            left: Some(l),
            right: Some(r),
            prod,
        });
        id
    }

    /// Apply a factorized rank-1 update `δA_i = u·vᵀ`, maintaining every
    /// product view on the leaf-to-root path with matrix-vector products
    /// only (`O(p² log k)`).
    pub fn apply_rank1(&mut self, i: usize, u: &[f64], v: &[f64]) {
        self.mats[i].add_outer(u, v);
        // walk from the leaf to the root, keeping the delta factored as
        // (u', v') and updating each product view with an outer product.
        let mut u = u.to_vec();
        let mut v = v.to_vec();
        let mut cur = self.leaf_nodes[i];
        self.nodes[cur].prod.add_outer(&u, &v);
        while let Some(parent) = self.find_parent(cur) {
            let (l, r) = (
                self.nodes[parent].left.expect("inner"),
                self.nodes[parent].right.expect("inner"),
            );
            if cur == r {
                // δ(L·R) = L · u · vᵀ  →  u ← L·u
                u = self.nodes[l].prod.matvec(&u);
            } else {
                // δ(L·R) = u · (vᵀ · R)  →  v ← Rᵀ·v
                v = self.nodes[r].prod.tvecmat(&v);
            }
            self.nodes[parent].prod.add_outer(&u, &v);
            cur = parent;
        }
    }

    /// Apply a rank-r update as a sequence of rank-1 updates (paper:
    /// “F-IVM processes δA₂ as a sequence of r rank-1 updates”).
    pub fn apply_rank_r(&mut self, i: usize, factors: &[(Vec<f64>, Vec<f64>)]) {
        for (u, v) in factors {
            self.apply_rank1(i, u, v);
        }
    }

    fn find_parent(&self, node: usize) -> Option<usize> {
        // tree is small (≤ 2k−1 nodes); linear scan is fine
        self.nodes
            .iter()
            .position(|n| n.left == Some(node) || n.right == Some(node))
    }

    /// The maintained product `A₁ ⋯ A_k`.
    pub fn product(&self) -> &Matrix {
        &self.nodes[self.root].prod
    }

    /// Current contents of leaf matrix `i`.
    pub fn matrix(&self, i: usize) -> &Matrix {
        &self.mats[i]
    }

    /// Number of materialized product views (internal tree nodes).
    pub fn view_count(&self) -> usize {
        self.nodes.len()
    }

    /// The leaf range `[lo, hi)` covered by tree node `id` (diagnostics).
    pub fn node_range(&self, id: usize) -> (usize, usize) {
        (self.nodes[id].lo, self.nodes[id].hi)
    }

    /// The root node id.
    pub fn root(&self) -> usize {
        self.root
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mats(k: usize, n: usize) -> Vec<Matrix> {
        (0..k)
            .map(|m| {
                Matrix::from_fn(n, n, |i, j| {
                    ((i * 31 + j * 17 + m * 7) % 10) as f64 * 0.1 - 0.45
                })
            })
            .collect()
    }

    #[test]
    fn all_strategies_agree_on_row_update() {
        let base = mats(3, 8);
        let mut re = ReEvalChain::new(base.clone());
        let mut fo = FirstOrderChain::new(base.clone());
        let mut fi = DenseChainIvm::new(base);
        // one-row update to A₂ = rank-1: u = e_row, v = row delta
        let row = 3;
        let v: Vec<f64> = (0..8).map(|j| (j as f64) * 0.2 - 0.5).collect();
        let mut u = vec![0.0; 8];
        u[row] = 1.0;
        let mut delta = Matrix::zeros(8, 8);
        delta.add_outer(&u, &v);
        re.apply(1, &delta);
        fo.apply(1, &delta);
        fi.apply_rank1(1, &u, &v);
        assert!(re.product().approx_eq(fo.product(), 1e-9));
        assert!(re.product().approx_eq(fi.product(), 1e-9));
    }

    #[test]
    fn rank_r_update_agrees() {
        let base = mats(3, 6);
        let mut re = ReEvalChain::new(base.clone());
        let mut fi = DenseChainIvm::new(base);
        let factors: Vec<(Vec<f64>, Vec<f64>)> = (0..3)
            .map(|r| {
                (
                    (0..6).map(|i| ((i + r) % 4) as f64 * 0.3).collect(),
                    (0..6)
                        .map(|i| ((i * r + 1) % 5) as f64 * 0.2 - 0.3)
                        .collect(),
                )
            })
            .collect();
        let mut delta = Matrix::zeros(6, 6);
        for (u, v) in &factors {
            delta.add_outer(u, v);
        }
        re.apply(1, &delta);
        fi.apply_rank_r(1, &factors);
        assert!(re.product().approx_eq(fi.product(), 1e-9));
    }

    #[test]
    fn updates_to_every_position_in_long_chain() {
        let k = 6;
        let base = mats(k, 5);
        let mut re = ReEvalChain::new(base.clone());
        let mut fi = DenseChainIvm::new(base);
        for pos in 0..k {
            let u: Vec<f64> = (0..5)
                .map(|i| if i == pos % 5 { 1.0 } else { 0.0 })
                .collect();
            let v: Vec<f64> = (0..5).map(|i| (i as f64 - pos as f64) * 0.1).collect();
            let mut delta = Matrix::zeros(5, 5);
            delta.add_outer(&u, &v);
            re.apply(pos, &delta);
            fi.apply_rank1(pos, &u, &v);
            assert!(
                re.product().approx_eq(fi.product(), 1e-8),
                "diverged after update to A{pos}"
            );
        }
    }

    #[test]
    fn view_tree_structure() {
        let fi = DenseChainIvm::new(mats(4, 3));
        // 4 leaves + 3 internal = 7 nodes; root covers [0,4)
        assert_eq!(fi.view_count(), 7);
        assert_eq!(fi.nodes[fi.root].lo, 0);
        assert_eq!(fi.nodes[fi.root].hi, 4);
    }

    #[test]
    fn non_square_chain() {
        // 4×6 · 6×3 · 3×5
        let a = Matrix::from_fn(4, 6, |i, j| (i + j) as f64 * 0.1);
        let b = Matrix::from_fn(6, 3, |i, j| (i as f64 - j as f64) * 0.2);
        let c = Matrix::from_fn(3, 5, |i, j| ((i * j) % 3) as f64);
        let mut re = ReEvalChain::new(vec![a.clone(), b.clone(), c.clone()]);
        let mut fi = DenseChainIvm::new(vec![a, b, c]);
        let u: Vec<f64> = vec![0.0, 1.0, 0.0, 0.0, 0.0, 0.0]; // row 1 of B (6 rows)
        let v: Vec<f64> = vec![0.5, -0.5, 1.0]; // B has 3 cols
        let mut delta = Matrix::zeros(6, 3);
        delta.add_outer(&u, &v);
        re.apply(1, &delta);
        fi.apply_rank1(1, &u, &v);
        assert!(re.product().approx_eq(fi.product(), 1e-9));
    }
}
