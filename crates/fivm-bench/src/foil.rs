//! The **`Arc<str>` foil**: what string-keyed maintenance would cost if
//! `Value` still carried `Str(Arc<str>)` instead of interned
//! `Sym(u32)` symbols.
//!
//! The engine no longer has an `Arc<str>` variant (that is the point of
//! the interning PR), so the foil cannot run through `IvmEngine`.
//! Instead this module replicates the *shape* of the star-join fast
//! path — the sequence of key operations one `apply` performs — in a
//! minimal harness that is **generic over the key representation**:
//!
//! * per update, the sibling-probe pattern: hash the probe key's value
//!   (exactly what `ProjKey::new` does per probe), probe `SIBLINGS`
//!   open-addressing maps (hash-first compare, then key equality, as
//!   `TupleMap` probes do), and multiply the partial payloads;
//! * then the store-merge pattern: upsert the delta key into the
//!   updated view's map, cloning the key only on fresh insert.
//!
//! Two instantiations run the identical code path:
//!
//! * [`SymKey`] — a `u32` id hashed as one word (`Value::Sym`'s exact
//!   hash recipe: tag byte + one `u64`), compared by integer equality,
//!   cloned by copy. This is what the engine ships after the PR.
//! * [`ArcKey`] — an `Arc<str>` hashed by content (the pre-PR
//!   `Value::Str` recipe: tag byte + bytes + terminator), compared by
//!   string content, cloned by atomic refcount. This is what the
//!   engine shipped before.
//!
//! The ratio `sym / arc` therefore isolates the representation: same
//! harness, same probe sequence, same map layout, only the key type
//! differs. The `sym` instantiation is also reported next to the real
//! engine's string-variant throughput so the harness can be sanity
//! -checked against reality (it is a *simplified* model — fewer maps
//! and no plan dispatch — so it runs somewhat faster than the full
//! engine at equal representation).

use fivm_core::FxHasher;
use std::hash::Hasher;
use std::sync::Arc;

/// Number of sibling views probed per update (the Housing star join
/// probes one aggregate view per sibling relation: 5).
const SIBLINGS: usize = 5;

/// A key representation under comparison.
pub trait KeyRep: Clone {
    /// Hash exactly as the corresponding `Value` variant hashes into a
    /// probe key (`ProjKey` re-hashes values per probe).
    fn fx_hash(&self) -> u64;
    /// Equality, as the corresponding `Value` variant compares.
    fn eq_key(&self, other: &Self) -> bool;
}

/// Interned symbol: the post-PR representation.
#[derive(Clone)]
pub struct SymKey(pub u32);

impl KeyRep for SymKey {
    #[inline]
    fn fx_hash(&self) -> u64 {
        let mut h = FxHasher::default();
        h.write_u8(2);
        h.write_u64(u64::from(self.0));
        h.finish()
    }

    #[inline]
    fn eq_key(&self, other: &Self) -> bool {
        self.0 == other.0
    }
}

/// Shared string: the pre-PR representation (`Value::Str(Arc<str>)`),
/// hashing and comparing content, cloning by refcount.
#[derive(Clone)]
pub struct ArcKey(pub Arc<str>);

impl KeyRep for ArcKey {
    #[inline]
    fn fx_hash(&self) -> u64 {
        let mut h = FxHasher::default();
        h.write_u8(2);
        h.write(self.0.as_bytes());
        h.write_u8(0xff);
        h.finish()
    }

    #[inline]
    fn eq_key(&self, other: &Self) -> bool {
        self.0 == other.0
    }
}

/// A minimal open-addressing map mirroring `TupleMap`'s probe loop:
/// power-of-two capacity, linear probing, stored hash compared before
/// key equality, borrowed-key probes (no key construction on lookup).
pub struct FoilMap<K> {
    mask: usize,
    slots: Vec<Option<(u64, K, f64)>>,
    len: usize,
}

impl<K: KeyRep> FoilMap<K> {
    pub fn with_capacity(cap: usize) -> Self {
        let cap = (cap * 2).next_power_of_two().max(16);
        FoilMap {
            mask: cap - 1,
            slots: (0..cap).map(|_| None).collect(),
            len: 0,
        }
    }

    #[inline]
    fn home(&self, hash: u64) -> usize {
        // Multiply-shift spread, as TupleMap does for short keys.
        (hash.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize & self.mask
    }

    /// Borrowed probe: hash computed by the caller (per probe, like
    /// `ProjKey`), key compared by reference.
    #[inline]
    pub fn get(&self, hash: u64, key: &K) -> Option<f64> {
        let mut i = self.home(hash);
        loop {
            match &self.slots[i] {
                None => return None,
                Some((h, k, v)) => {
                    if *h == hash && k.eq_key(key) {
                        return Some(*v);
                    }
                }
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Upsert, cloning the key only on fresh insert (as `TupleKey::
    /// materialize` is only called for new keys). Panics if the table
    /// would exceed half full — the foil pre-sizes, it never grows.
    #[inline]
    pub fn upsert(&mut self, hash: u64, key: &K, delta: f64) {
        assert!(self.len * 2 < self.slots.len(), "foil map over-full");
        let mut i = self.home(hash);
        loop {
            match &mut self.slots[i] {
                Some((h, k, v)) => {
                    if *h == hash && k.eq_key(key) {
                        *v += delta;
                        return;
                    }
                }
                slot @ None => {
                    *slot = Some((hash, key.clone(), delta));
                    self.len += 1;
                    return;
                }
            }
            i = (i + 1) & self.mask;
        }
    }
}

/// The star-join shadow: `SIBLINGS` pre-loaded sibling views plus the
/// updated relation's own view, all keyed by the shared join key.
pub struct StarShadow<K> {
    siblings: Vec<FoilMap<K>>,
    own: FoilMap<K>,
    /// Root aggregate (keyed on the empty tuple in the real engine).
    pub result: f64,
}

impl<K: KeyRep> StarShadow<K> {
    /// Pre-load every sibling with all `keys` (every key joins, as in
    /// the Housing star where each dimension covers every postcode).
    pub fn load(keys: &[K]) -> Self {
        let mut siblings = Vec::with_capacity(SIBLINGS);
        for s in 0..SIBLINGS {
            let mut m = FoilMap::with_capacity(keys.len());
            for k in keys {
                m.upsert(k.fx_hash(), k, (s + 1) as f64);
            }
            siblings.push(m);
        }
        StarShadow {
            siblings,
            own: FoilMap::with_capacity(keys.len()),
            result: 0.0,
        }
    }

    /// One single-tuple update: the per-`apply` key-op sequence of the
    /// compiled fast path. Returns whether the update joined.
    #[inline]
    pub fn apply(&mut self, key: &K, lift: f64) -> bool {
        // ProjKey::new: hash the probe key from the delta tuple.
        let hash = key.fx_hash();
        let mut payload = lift;
        for s in &self.siblings {
            match s.get(hash, key) {
                Some(p) => payload *= p,
                None => return false,
            }
        }
        // Store merge into the updated view (owning clone on first
        // insert only) and the root upsert.
        self.own.upsert(hash, key, lift);
        self.result += payload;
        true
    }
}

/// Throughput (updates/s) of `updates` single-tuple applies over a
/// `keys`-sized star, best of `reps` runs. The update stream and key
/// pool are pre-built by the caller — construction (and, for symbols,
/// interning) happens at load, exactly as in the engine smoke runs.
pub fn shadow_throughput<K: KeyRep>(keys: &[K], updates: &[usize], reps: usize) -> f64 {
    let mut best = 0.0f64;
    for _ in 0..reps {
        let mut shadow = StarShadow::load(keys);
        let start = std::time::Instant::now();
        for &u in updates {
            shadow.apply(&keys[u], 1.0);
        }
        let dt = start.elapsed().as_secs_f64().max(1e-9);
        assert!(shadow.result > 0.0, "updates joined");
        best = best.max(updates.len() as f64 / dt);
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(n: usize) -> (Vec<SymKey>, Vec<ArcKey>) {
        (
            (0..n as u32).map(SymKey).collect(),
            (0..n)
                .map(|i| ArcKey(Arc::from(format!("PC{i:06}").as_str())))
                .collect(),
        )
    }

    #[test]
    fn both_representations_compute_the_same_aggregate() {
        let (sym, arc) = keys(100);
        let updates: Vec<usize> = (0..500).map(|i| (i * 37) % 100).collect();
        let mut a = StarShadow::load(&sym);
        let mut b = StarShadow::load(&arc);
        for &u in &updates {
            assert!(a.apply(&sym[u], 1.0));
            assert!(b.apply(&arc[u], 1.0));
        }
        assert_eq!(a.result, b.result);
        // 5 siblings with payloads 1..=5 ⇒ each joining update adds 5!.
        assert_eq!(a.result, updates.len() as f64 * 120.0);
    }

    #[test]
    fn missing_keys_do_not_join() {
        let (sym, _) = keys(10);
        let mut shadow = StarShadow::load(&sym[..5]);
        assert!(shadow.apply(&sym[0], 1.0));
        assert!(!shadow.apply(&sym[9], 1.0));
        assert_eq!(shadow.result, 120.0);
    }
}
