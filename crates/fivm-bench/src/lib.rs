//! # fivm-bench — the F-IVM experiment harness
//!
//! Reproduces every table and figure of the paper’s evaluation (§7 and
//! Appendix C); the per-experiment index lives in DESIGN.md §4 and the
//! measured-vs-paper numbers in EXPERIMENTS.md.
//!
//! [`Maintainer`] abstracts over the competing strategies so one driver
//! ([`run_stream`]) measures them all: F-IVM ([`FIvmMaintainer`]),
//! SQL-OPT (same engine, degree-ring payloads), DBT-RING
//! ([`RecursiveMaintainer`]), DBT / 1-IVM with scalar payloads
//! ([`ScalarFleet`] — one engine per aggregate, no sharing), and the
//! re-evaluation baselines. Streams honour the paper’s one-hour-timeout
//! protocol through a configurable [`Budget`].

#![forbid(unsafe_code)]

pub mod foil;

use fivm_core::{Delta, LiftingMap, Relation, Ring, Tuple};
use fivm_data::Batch;
use fivm_engine::reeval::{FactorizedReeval, NaiveReeval};
use fivm_engine::{FirstOrderIvm, IvmEngine, RecursiveIvm};
use fivm_query::{QueryDef, RelIndex, ViewTree};
use std::time::{Duration, Instant};

/// A maintenance strategy under benchmark.
pub trait Maintainer {
    /// Apply one insert batch.
    fn apply_batch(&mut self, rel: RelIndex, tuples: &[Tuple]);
    /// Approximate resident bytes.
    fn bytes(&self) -> usize;
    /// Number of materialized views.
    fn views(&self) -> usize;
}

/// Build an insert delta with payload `1` for each tuple.
pub fn ones_delta<R: Ring>(schema: fivm_core::Schema, tuples: &[Tuple]) -> Delta<R> {
    Delta::Flat(Relation::from_pairs(
        schema,
        tuples.iter().map(|t| (t.clone(), R::one())),
    ))
}

/// F-IVM (or SQL-OPT, depending on the ring/liftings) over one view
/// tree.
pub struct FIvmMaintainer<R: Ring> {
    /// The wrapped engine.
    pub engine: IvmEngine<R>,
    schemas: Vec<fivm_core::Schema>,
}

impl<R: Ring> FIvmMaintainer<R> {
    /// Build for `query`/`tree` with updates to `updatable`.
    pub fn new(
        query: QueryDef,
        tree: ViewTree,
        updatable: &[RelIndex],
        liftings: LiftingMap<R>,
    ) -> Self {
        let schemas = query.relations.iter().map(|r| r.schema.clone()).collect();
        FIvmMaintainer {
            engine: IvmEngine::new(query, tree, updatable, liftings),
            schemas,
        }
    }

    /// Wrap a preconfigured engine (e.g. one with a payload transform or
    /// preloaded static relations).
    pub fn from_engine(engine: IvmEngine<R>) -> Self {
        let schemas = engine
            .query()
            .relations
            .iter()
            .map(|r| r.schema.clone())
            .collect();
        FIvmMaintainer { engine, schemas }
    }
}

impl<R: Ring> Maintainer for FIvmMaintainer<R> {
    fn apply_batch(&mut self, rel: RelIndex, tuples: &[Tuple]) {
        self.engine
            .apply(rel, &ones_delta::<R>(self.schemas[rel].clone(), tuples));
    }

    fn bytes(&self) -> usize {
        self.engine.approx_bytes()
    }

    fn views(&self) -> usize {
        self.engine.stored_view_count()
    }
}

/// DBT-RING: the recursive scheme with ring payloads.
pub struct RecursiveMaintainer<R: Ring> {
    /// The wrapped hierarchy.
    pub ivm: RecursiveIvm<R>,
    schemas: Vec<fivm_core::Schema>,
}

impl<R: Ring> RecursiveMaintainer<R> {
    /// Build for `query` with updates to `updatable`.
    pub fn new(query: QueryDef, updatable: &[RelIndex], liftings: LiftingMap<R>) -> Self {
        let schemas = query.relations.iter().map(|r| r.schema.clone()).collect();
        RecursiveMaintainer {
            ivm: RecursiveIvm::new(query, updatable, liftings),
            schemas,
        }
    }
}

impl<R: Ring> Maintainer for RecursiveMaintainer<R> {
    fn apply_batch(&mut self, rel: RelIndex, tuples: &[Tuple]) {
        self.ivm
            .apply(rel, &ones_delta::<R>(self.schemas[rel].clone(), tuples));
    }

    fn bytes(&self) -> usize {
        self.ivm.approx_bytes()
    }

    fn views(&self) -> usize {
        self.ivm.stored_view_count()
    }
}

/// Which engine each member of a [`ScalarFleet`] runs.
pub enum ScalarKind {
    /// DBT: one recursive hierarchy per aggregate.
    Recursive,
    /// 1-IVM: one first-order maintainer per aggregate.
    FirstOrder,
}

/// The scalar-payload baselines of §7: one engine per regression
/// aggregate, sharing nothing (the reason DBT needs 3 814 views and
/// 1-IVM 995 on Retailer).
pub struct ScalarFleet {
    recursive: Vec<RecursiveIvm<f64>>,
    first_order: Vec<FirstOrderIvm<f64>>,
    schemas: Vec<fivm_core::Schema>,
}

impl ScalarFleet {
    /// Build one engine per aggregate lifting map.
    pub fn new(
        kind: ScalarKind,
        query: QueryDef,
        tree: &ViewTree,
        updatable: &[RelIndex],
        aggregates: Vec<LiftingMap<f64>>,
    ) -> Self {
        let schemas: Vec<_> = query.relations.iter().map(|r| r.schema.clone()).collect();
        match kind {
            ScalarKind::Recursive => ScalarFleet {
                recursive: aggregates
                    .into_iter()
                    .map(|lifts| RecursiveIvm::new(query.clone(), updatable, lifts))
                    .collect(),
                first_order: Vec::new(),
                schemas,
            },
            ScalarKind::FirstOrder => ScalarFleet {
                recursive: Vec::new(),
                first_order: aggregates
                    .into_iter()
                    .map(|lifts| FirstOrderIvm::new(query.clone(), tree.clone(), lifts))
                    .collect(),
                schemas,
            },
        }
    }
}

impl Maintainer for ScalarFleet {
    fn apply_batch(&mut self, rel: RelIndex, tuples: &[Tuple]) {
        let delta = ones_delta::<f64>(self.schemas[rel].clone(), tuples);
        for e in &mut self.recursive {
            e.apply(rel, &delta);
        }
        for e in &mut self.first_order {
            e.apply(rel, &delta);
        }
    }

    fn bytes(&self) -> usize {
        self.recursive
            .iter()
            .map(RecursiveIvm::approx_bytes)
            .sum::<usize>()
            + self
                .first_order
                .iter()
                .map(FirstOrderIvm::approx_bytes)
                .sum::<usize>()
    }

    fn views(&self) -> usize {
        self.recursive
            .iter()
            .map(RecursiveIvm::stored_view_count)
            .sum::<usize>()
            + self
                .first_order
                .iter()
                .map(FirstOrderIvm::stored_view_count)
                .sum::<usize>()
    }
}

/// F-RE: factorized re-evaluation per batch.
pub struct FReMaintainer {
    re: FactorizedReeval<f64>,
    schemas: Vec<fivm_core::Schema>,
}

impl FReMaintainer {
    /// Build over a view tree.
    pub fn new(query: QueryDef, tree: ViewTree, liftings: LiftingMap<f64>) -> Self {
        let schemas = query.relations.iter().map(|r| r.schema.clone()).collect();
        FReMaintainer {
            re: FactorizedReeval::new(query, tree, liftings),
            schemas,
        }
    }
}

impl Maintainer for FReMaintainer {
    fn apply_batch(&mut self, rel: RelIndex, tuples: &[Tuple]) {
        self.re
            .apply(rel, &ones_delta::<f64>(self.schemas[rel].clone(), tuples));
    }

    fn bytes(&self) -> usize {
        0 // re-evaluation keeps only the inputs + result
    }

    fn views(&self) -> usize {
        1
    }
}

/// DBT-RE: naive join-then-aggregate re-evaluation per batch.
pub struct DbtReMaintainer {
    re: NaiveReeval<f64>,
    schemas: Vec<fivm_core::Schema>,
}

impl DbtReMaintainer {
    /// Build for a query.
    pub fn new(query: QueryDef, liftings: LiftingMap<f64>) -> Self {
        let schemas = query.relations.iter().map(|r| r.schema.clone()).collect();
        DbtReMaintainer {
            re: NaiveReeval::new(query, liftings),
            schemas,
        }
    }
}

impl Maintainer for DbtReMaintainer {
    fn apply_batch(&mut self, rel: RelIndex, tuples: &[Tuple]) {
        self.re
            .apply(rel, &ones_delta::<f64>(self.schemas[rel].clone(), tuples));
    }

    fn bytes(&self) -> usize {
        0
    }

    fn views(&self) -> usize {
        1
    }
}

/// Per-run time budget, standing in for the paper’s one-hour timeout.
#[derive(Clone, Copy, Debug)]
pub struct Budget {
    /// Abort the stream once this much wall-clock time has elapsed.
    pub timeout: Duration,
}

impl Default for Budget {
    fn default() -> Self {
        Budget {
            timeout: Duration::from_secs(30),
        }
    }
}

/// Result of streaming a workload through a strategy.
#[derive(Clone, Debug)]
pub struct StreamReport {
    /// Tuples applied before completion or timeout.
    pub tuples: usize,
    /// Fraction of the stream processed (1.0 = finished).
    pub fraction: f64,
    /// Wall-clock time spent applying updates.
    pub elapsed: Duration,
    /// Average throughput in tuples/second.
    pub throughput: f64,
    /// Resident bytes at the end.
    pub bytes: usize,
    /// Materialized view count.
    pub views: usize,
    /// Throughput checkpoints at stream fractions (fraction, tuples/s,
    /// bytes) — the x-axis of Figures 7/8/13.
    pub checkpoints: Vec<(f64, f64, usize)>,
    /// Whether the budget expired before the stream ended.
    pub timed_out: bool,
}

impl StreamReport {
    /// Render throughput with a timeout marker (the paper’s `*`).
    pub fn display_throughput(&self) -> String {
        if self.timed_out {
            format!("{:>12.0}*", self.throughput)
        } else {
            format!("{:>12.0} ", self.throughput)
        }
    }
}

/// Drive `batches` through a strategy, checkpointing throughput and
/// memory at stream quarters.
pub fn run_stream(m: &mut dyn Maintainer, batches: &[Batch], budget: Budget) -> StreamReport {
    let total: usize = batches.iter().map(|b| b.tuples.len()).sum();
    let start = Instant::now();
    let mut applied = 0usize;
    let mut checkpoints = Vec::new();
    let mut next_checkpoint = 0.25f64;
    let mut timed_out = false;
    for b in batches {
        m.apply_batch(b.relation, &b.tuples);
        applied += b.tuples.len();
        let frac = applied as f64 / total.max(1) as f64;
        if frac + 1e-12 >= next_checkpoint {
            let el = start.elapsed().as_secs_f64().max(1e-9);
            checkpoints.push((frac, applied as f64 / el, m.bytes()));
            next_checkpoint += 0.25;
        }
        if start.elapsed() > budget.timeout {
            timed_out = applied < total;
            break;
        }
    }
    let elapsed = start.elapsed();
    StreamReport {
        tuples: applied,
        fraction: applied as f64 / total.max(1) as f64,
        throughput: applied as f64 / elapsed.as_secs_f64().max(1e-9),
        elapsed,
        bytes: m.bytes(),
        views: m.views(),
        checkpoints,
        timed_out,
    }
}

/// Pretty seconds.
pub fn fmt_secs(d: Duration) -> String {
    format!("{:.3}s", d.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;
    use fivm_core::tuple;
    use fivm_query::VariableOrder;

    fn setup() -> (QueryDef, ViewTree) {
        let q = QueryDef::example_rst(&[]);
        let vo = VariableOrder::parse("A - { B, C - { D, E } }", &q.catalog);
        let tree = ViewTree::build(&q, &vo);
        (q, tree)
    }

    #[test]
    fn run_stream_reports_progress() {
        let (q, tree) = setup();
        let mut m = FIvmMaintainer::<i64>::new(q, tree, &[0, 1, 2], LiftingMap::new());
        let batches = vec![
            Batch {
                relation: 0,
                tuples: vec![tuple![1, 1], tuple![2, 2]],
            },
            Batch {
                relation: 1,
                tuples: vec![tuple![1, 1, 1]],
            },
            Batch {
                relation: 2,
                tuples: vec![tuple![1, 5]],
            },
        ];
        let report = run_stream(&mut m, &batches, Budget::default());
        assert_eq!(report.tuples, 4);
        assert!(!report.timed_out);
        assert!((report.fraction - 1.0).abs() < 1e-12);
        assert!(report.throughput > 0.0);
        assert_eq!(report.checkpoints.len(), 3); // quarters crossed at 0.5, 0.75, 1.0
        assert_eq!(m.engine.result().payload(&fivm_core::Tuple::unit()), 1i64);
    }

    #[test]
    fn timeout_interrupts() {
        let (q, tree) = setup();
        let mut m = FIvmMaintainer::<i64>::new(q, tree, &[0, 1, 2], LiftingMap::new());
        let batches: Vec<Batch> = (0..2000)
            .map(|i| Batch {
                relation: 0,
                tuples: vec![tuple![i as i64, i as i64]],
            })
            .collect();
        let report = run_stream(
            &mut m,
            &batches,
            Budget {
                timeout: Duration::from_nanos(1),
            },
        );
        assert!(report.timed_out);
        assert!(report.tuples < 2000);
        assert!(report.display_throughput().contains('*'));
    }

    #[test]
    fn scalar_fleet_maintains_all_aggregates() {
        let (q, tree) = setup();
        let spec = fivm_ml::CofactorSpec::over_all_vars(&q);
        let aggs: Vec<LiftingMap<f64>> = spec
            .scalar_aggregates()
            .into_iter()
            .take(4)
            .map(|(_, l)| l)
            .collect();
        let mut fleet = ScalarFleet::new(ScalarKind::Recursive, q.clone(), &tree, &[0, 1, 2], aggs);
        fleet.apply_batch(0, &[tuple![1, 1]]);
        fleet.apply_batch(1, &[tuple![1, 1, 1]]);
        fleet.apply_batch(2, &[tuple![1, 2]]);
        assert!(fleet.views() > 4, "one hierarchy per aggregate");
    }
}
