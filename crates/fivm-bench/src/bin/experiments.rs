//! Regenerates every table and figure of the paper’s evaluation (§7 +
//! Appendix C) and prints paper-style rows. EXPERIMENTS.md records a
//! captured run next to the paper’s numbers.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p fivm-bench --bin experiments            # all, small scale
//! cargo run --release -p fivm-bench --bin experiments -- fig6    # one experiment
//! FIVM_SCALE=medium cargo run --release -p fivm-bench --bin experiments
//! ```
//!
//! Scales: `small` (default, ≈1 min total), `medium` (≈10 min). The
//! paper’s absolute scale (84 M-row Retailer, n = 16384 matrices, 1 h
//! timeouts) is not reproducible on a laptop; DESIGN.md §3 explains why
//! the *shapes* survive down-scaling.

use fivm_bench::*;
use fivm_core::ring::cofactor::Cofactor;
use fivm_core::ring::relational::RelPayload;
use fivm_core::{Lifting, LiftingMap, Schema, Semiring, Value};
use fivm_data::{
    housing, matrices, retailer, twitter, HousingConfig, RetailerConfig, TwitterConfig,
};
use fivm_engine::enumerate::{factorized_preprojection, factorized_transform};
use fivm_engine::memory::format_bytes;
use fivm_linalg::{DenseChainIvm, FirstOrderChain, Matrix, ReEvalChain};
use fivm_ml::CofactorSpec;
use fivm_query::{QueryDef, ViewTree};
use std::time::{Duration, Instant};

struct Scale {
    matrix_dims: Vec<usize>,
    rank_n: usize,
    ranks: Vec<usize>,
    retailer: RetailerConfig,
    housing_postcodes: usize,
    housing_scales: Vec<usize>,
    twitter: TwitterConfig,
    batch_sizes: Vec<usize>,
    timeout: Duration,
    scalar_fleet_cap: usize,
}

fn scale() -> Scale {
    let name = std::env::var("FIVM_SCALE").unwrap_or_else(|_| "small".into());
    match name.as_str() {
        "medium" => Scale {
            matrix_dims: vec![64, 128, 256, 512],
            rank_n: 512,
            ranks: vec![1, 2, 4, 8, 16, 32, 64, 128],
            retailer: RetailerConfig {
                inventory_rows: 60_000,
                locations: 50,
                dates: 200,
                items: 1_000,
                zips: 40,
                ..Default::default()
            },
            housing_postcodes: 2_000,
            housing_scales: vec![1, 2, 4, 8, 12, 16, 20],
            twitter: TwitterConfig {
                edges: 60_000,
                nodes: 9_000,
                ..Default::default()
            },
            batch_sizes: vec![100, 1_000, 10_000, 100_000],
            timeout: Duration::from_secs(120),
            scalar_fleet_cap: 990,
        },
        _ => Scale {
            matrix_dims: vec![32, 64, 128, 256],
            rank_n: 256,
            ranks: vec![1, 2, 4, 8, 16, 32, 64],
            retailer: RetailerConfig::default(),
            housing_postcodes: 400,
            housing_scales: vec![1, 2, 4, 8],
            twitter: TwitterConfig::default(),
            batch_sizes: vec![100, 1_000, 10_000],
            timeout: Duration::from_secs(25),
            scalar_fleet_cap: 45, // cap the per-aggregate fleets (see note)
        },
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--smoke") {
        smoke();
        return;
    }
    let want = |name: &str| args.is_empty() || args.iter().any(|a| a == name);
    let s = scale();
    println!(
        "F-IVM experiment harness (scale: {})\n",
        std::env::var("FIVM_SCALE").unwrap_or_else(|_| "small".into())
    );
    if want("fig6") {
        fig6_left(&s);
        fig6_right(&s);
    }
    if want("fig7") {
        fig7(&s);
    }
    if want("fig8") {
        fig8(&s);
    }
    if want("fig11") {
        fig11(&s);
    }
    if want("fig12") {
        fig12(&s);
    }
    if want("fig13") {
        fig13(&s);
    }
    if want("views") {
        view_counts();
    }
}

/// `--smoke`: the update-propagation hot paths, reported as one
/// machine-readable JSON line so PRs can track a throughput trajectory
/// (`BENCH_*.json`):
///
/// * single-tuple updates of Figure 11 (SUM over the Housing star
///   join) and Figure 13 (count over the Twitter triangle with
///   indicators), one tuple per `IvmEngine::apply`;
/// * the Figure 12 batch-size sweep as **flat batches** (1k–100k
///   tuples per `apply`) over Housing and Retailer SUM maintenance,
///   once through the compiled flat-batch fast path and once with the
///   fast path disabled (`set_fast_path(false)`), so the
///   `…_fast`/`…_general` pairs record the batch path's speedup;
/// * **string-keyed variants** (`fig11_string…`, `fig12_string…`,
///   `fig13_string…`): the same shapes with interned-string join keys
///   (string postcodes / Twitter handles), plus the `foil_…` entries
///   from [`fivm_bench::foil`] — the identical probe/merge sequence
///   run once with `u32` symbols and once with content-hashed
///   `Arc<str>` keys (the pre-interning `Value` representation), so
///   `foil_…_speedup_sym_over_arcstr` isolates what interning buys.
fn smoke() {
    // Deltas are pre-built outside the timed loops so the report tracks
    // `IvmEngine::apply` itself — the propagation hot path — rather
    // than per-tuple delta-construction harness overhead.
    fn single_tuple_deltas<R: fivm_core::Ring>(
        q: &QueryDef,
        batches: &[fivm_data::Batch],
    ) -> Vec<(usize, fivm_core::Delta<R>)> {
        batches
            .iter()
            .flat_map(|b| {
                b.tuples.iter().map(|t| {
                    (
                        b.relation,
                        ones_delta::<R>(
                            q.relations[b.relation].schema.clone(),
                            std::slice::from_ref(t),
                        ),
                    )
                })
            })
            .collect()
    }

    fn best_throughput<R: fivm_core::Ring>(
        mut mk_engine: impl FnMut() -> fivm_engine::IvmEngine<R>,
        updates: &[(usize, fivm_core::Delta<R>)],
    ) -> f64 {
        (0..3)
            .map(|_| {
                let mut engine = mk_engine();
                let start = Instant::now();
                for (rel, d) in updates {
                    engine.apply(*rel, d);
                }
                updates.len() as f64 / start.elapsed().as_secs_f64().max(1e-9)
            })
            .fold(0.0f64, f64::max)
    }

    // fig11 path: SUM(postcode) over the Housing star join.
    let h = housing::generate(&HousingConfig {
        postcodes: 20_000,
        scale: 1,
        ..Default::default()
    });
    let hq = h.query.clone();
    let htree = ViewTree::build(&hq, &h.order);
    let hall: Vec<usize> = (0..hq.relations.len()).collect();
    let mut hlifts = LiftingMap::<f64>::new();
    hlifts.set(
        hq.catalog.lookup("postcode").unwrap(),
        Lifting::from_fn(|v: &Value| v.as_f64().unwrap()),
    );
    let hupdates = single_tuple_deltas::<f64>(&hq, &h.stream(1));
    let htput = best_throughput(
        || fivm_engine::IvmEngine::new(hq.clone(), htree.clone(), &hall, hlifts.clone()),
        &hupdates,
    );

    // fig13 path: COUNT over the Twitter triangle, with indicators.
    let t = twitter::generate(&TwitterConfig {
        edges: 60_000,
        nodes: 6_000,
        ..Default::default()
    });
    let tq = t.query.clone();
    let mut ttree = ViewTree::build(&tq, &t.order);
    fivm_query::add_indicators(&mut ttree, &tq);
    let tupdates = single_tuple_deltas::<i64>(&tq, &t.stream(1));
    let ttput = best_throughput(
        || fivm_engine::IvmEngine::new(tq.clone(), ttree.clone(), &[0, 1, 2], LiftingMap::new()),
        &tupdates,
    );

    // Heavy/light crossover (fig13_hl): COUNT over the triangle on
    // Zipf(s)-skewed Twitter streams, classical indicator-projected
    // engine vs the IVM^ε partitioned engine (`TriangleHlEngine`).
    // The classical path pays O(deg) per single-tuple update on hub
    // keys while the partitioned path bounds every update by O(N^ε)
    // via heavy/light routing — so uniform streams (s = 0) favor
    // classical (partition bookkeeping is pure overhead) and strongly
    // skewed streams favor the partitioned path. The sweep records
    // both sides of that crossover; final triangle counts are asserted
    // equal at every point, and the partitioned engine must be ≥ 2x
    // classical at the heavy end (machine-independent ratio).
    let hl_crossover = {
        use fivm_data::twitter::ZipfTwitterConfig;
        use fivm_engine::{HlConfig, TriangleHlEngine};
        let mut out = String::new();
        let mut heavy_speedup = 0.0f64;
        for (label, s_exp) in [("s00", 0.0), ("s10", 1.0), ("s15", 1.5)] {
            let tz = twitter::generate_zipf(&ZipfTwitterConfig {
                edges: 30_000,
                nodes: 3_000,
                exponent: s_exp,
                seed: 0x7717,
            });
            let zq = tz.query.clone();
            let mut ztree = ViewTree::build(&zq, &tz.order);
            fivm_query::add_indicators(&mut ztree, &zq);
            let zupdates = single_tuple_deltas::<i64>(&zq, &tz.stream(1));
            let classical_tput = best_throughput(
                || {
                    fivm_engine::IvmEngine::new(
                        zq.clone(),
                        ztree.clone(),
                        &[0, 1, 2],
                        LiftingMap::new(),
                    )
                },
                &zupdates,
            );
            let flat: Vec<(usize, fivm_core::Tuple)> = tz
                .stream(1)
                .iter()
                .flat_map(|b| b.tuples.iter().map(|tu| (b.relation, tu.clone())))
                .collect();
            let mut hl_total = 0i64;
            let hl_tput = (0..3)
                .map(|_| {
                    let mut e =
                        TriangleHlEngine::<i64>::new(zq.clone(), HlConfig::default()).unwrap();
                    let start = Instant::now();
                    for (rel, tu) in &flat {
                        e.apply_update(*rel, tu, 1);
                    }
                    let tput = flat.len() as f64 / start.elapsed().as_secs_f64().max(1e-9);
                    hl_total = *e.total();
                    tput
                })
                .fold(0.0f64, f64::max);
            // Same stream once more through a classical engine purely
            // for the equality check (outside any timed loop).
            let mut check = fivm_engine::IvmEngine::<i64>::new(
                zq.clone(),
                ztree.clone(),
                &[0, 1, 2],
                LiftingMap::new(),
            );
            for (rel, d) in &zupdates {
                check.apply(*rel, d);
            }
            assert_eq!(
                hl_total,
                check.result().payload(&fivm_core::Tuple::unit()),
                "partitioned and classical triangle counts diverge at s = {s_exp}"
            );
            let speedup = hl_tput / classical_tput.max(1e-9);
            if s_exp >= 1.5 {
                heavy_speedup = speedup;
            }
            out.push_str(&format!(
                ",\"fig13_hl_classical_{label}\":{classical_tput:.0},\
                 \"fig13_hl_partitioned_{label}\":{hl_tput:.0},\
                 \"fig13_hl_speedup_{label}\":{speedup:.2}"
            ));
        }
        assert!(
            heavy_speedup >= 2.0,
            "partitioned engine only {heavy_speedup:.2}x classical at the heavy end \
             (the crossover requires >= 2x)"
        );
        out
    };

    // fig11 string variant: the same star-join shape with the shared
    // join key `postcode` as an interned string ("PC000042"), SUM over
    // the numeric `price` column. Symbols are interned at load (delta
    // construction); the timed loop ships 4-byte ids.
    //
    // `fig11_control_sum_price` is the representation-isolated control:
    // the *integer*-postcode instance of the identical generator config
    // with the identical SUM(price) lifting, so
    // fig11_string_sum_star / fig11_control_sum_price compares string
    // keys vs integer keys with everything else equal (the headline
    // fig11_sum_star lifts `postcode` itself, a different view-tree
    // position for the lift).
    let hc = housing::generate(&HousingConfig {
        postcodes: 20_000,
        scale: 1,
        ..Default::default()
    });
    let hcq = hc.query.clone();
    let hctree = ViewTree::build(&hcq, &hc.order);
    let hcall: Vec<usize> = (0..hcq.relations.len()).collect();
    let mut hclifts = LiftingMap::<f64>::new();
    hclifts.set(
        hcq.catalog.lookup("price").unwrap(),
        Lifting::from_fn(|v: &Value| v.as_f64().unwrap()),
    );
    let hcupdates = single_tuple_deltas::<f64>(&hcq, &hc.stream(1));
    let hctput = best_throughput(
        || fivm_engine::IvmEngine::new(hcq.clone(), hctree.clone(), &hcall, hclifts.clone()),
        &hcupdates,
    );

    let hs = housing::generate_string_postcodes(&HousingConfig {
        postcodes: 20_000,
        scale: 1,
        ..Default::default()
    });
    let hsq = hs.query.clone();
    let hstree = ViewTree::build(&hsq, &hs.order);
    let hsall: Vec<usize> = (0..hsq.relations.len()).collect();
    let mut hslifts = LiftingMap::<f64>::new();
    hslifts.set(
        hsq.catalog.lookup("price").unwrap(),
        Lifting::from_fn(|v: &Value| v.as_f64().unwrap()),
    );
    let hsupdates = single_tuple_deltas::<f64>(&hsq, &hs.stream(1));
    let hstput = best_throughput(
        || fivm_engine::IvmEngine::new(hsq.clone(), hstree.clone(), &hsall, hslifts.clone()),
        &hsupdates,
    );

    // fig13 string variant: the triangle over Twitter *handles*
    // ("@user004217") — every key column an interned string.
    let th = twitter::generate_handles(&TwitterConfig {
        edges: 60_000,
        nodes: 6_000,
        ..Default::default()
    });
    let thq = th.query.clone();
    let mut thtree = ViewTree::build(&thq, &th.order);
    fivm_query::add_indicators(&mut thtree, &thq);
    let thupdates = single_tuple_deltas::<i64>(&thq, &th.stream(1));
    let thtput = best_throughput(
        || fivm_engine::IvmEngine::new(thq.clone(), thtree.clone(), &[0, 1, 2], LiftingMap::new()),
        &thupdates,
    );

    // The Arc<str> foil (fivm_bench::foil): the identical probe/merge
    // sequence over the same key pools, instantiated once with
    // interned u32 symbols and once with content-hashed Arc<str> keys
    // — the representation the engine shipped before interning. Two
    // working-set sizes: 20k keys (the fig11 shape, cache-resident)
    // and 100k (the fig12 batch shape, cache-pressured).
    use fivm_bench::foil::{shadow_throughput, ArcKey, SymKey};
    let mut foil = String::new();
    {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(0x70_1F);
        for (shape, nkeys, nupd) in [
            ("fig11", 20_000usize, 200_000usize),
            ("fig12", 100_000, 200_000),
        ] {
            let strings: Vec<String> = (0..nkeys).map(|i| format!("PC{i:06}")).collect();
            let sym_keys: Vec<SymKey> = (0..nkeys as u32).map(SymKey).collect();
            let arc_keys: Vec<ArcKey> = strings
                .iter()
                .map(|s| ArcKey(std::sync::Arc::from(s.as_str())))
                .collect();
            let updates: Vec<usize> = (0..nupd).map(|_| rng.gen_range(0..nkeys)).collect();
            let sym_tput = shadow_throughput(&sym_keys, &updates, 3);
            let arc_tput = shadow_throughput(&arc_keys, &updates, 3);
            foil.push_str(&format!(
                ",\"foil_{shape}_shape_sym\":{sym_tput:.0},\
                 \"foil_{shape}_shape_arcstr\":{arc_tput:.0},\
                 \"foil_{shape}_speedup_sym_over_arcstr\":{:.2}",
                sym_tput / arc_tput.max(1e-9)
            ));
        }
    }

    // fig12 path: the batch-size sweep as flat batches, fast path vs
    // general path (tuples/s; see the doc comment). Deltas are
    // pre-built outside the timed loop, like the single-tuple paths.
    fn batch_throughput(
        q: &QueryDef,
        tree: &ViewTree,
        all: &[usize],
        lifts: &LiftingMap<f64>,
        batches: &[fivm_data::Batch],
        fast: bool,
        workers: usize,
    ) -> f64 {
        let deltas: Vec<(usize, fivm_core::Delta<f64>)> = batches
            .iter()
            .map(|b| {
                (
                    b.relation,
                    ones_delta::<f64>(q.relations[b.relation].schema.clone(), &b.tuples),
                )
            })
            .collect();
        let total: usize = batches.iter().map(|b| b.tuples.len()).sum();
        (0..2)
            .map(|_| {
                let mut engine =
                    fivm_engine::IvmEngine::new(q.clone(), tree.clone(), all, lifts.clone());
                engine.set_fast_path(fast);
                engine.set_workers(workers);
                let start = Instant::now();
                for (rel, d) in &deltas {
                    engine.apply(*rel, d);
                }
                total as f64 / start.elapsed().as_secs_f64().max(1e-9)
            })
            .fold(0.0f64, f64::max)
    }
    let mut fig12 = String::new();

    // Housing: SUM(postcode), 375k-tuple stream (House/Shop/Restaurant
    // reach 100k rows each so the largest batch size is exercised).
    let hb = housing::generate(&HousingConfig {
        postcodes: 25_000,
        scale: 4,
        ..Default::default()
    });
    let hbq = hb.query.clone();
    let hbtree = ViewTree::build(&hbq, &hb.order);
    let hball: Vec<usize> = (0..hbq.relations.len()).collect();
    let mut hblifts = LiftingMap::<f64>::new();
    hblifts.set(
        hbq.catalog.lookup("postcode").unwrap(),
        Lifting::from_fn(|v: &Value| v.as_f64().unwrap()),
    );

    // Retailer: SUM(inventoryunits), 120k-row fact table.
    let rb = retailer::generate(&RetailerConfig {
        inventory_rows: 120_000,
        locations: 50,
        dates: 200,
        items: 1_000,
        zips: 40,
        ..Default::default()
    });
    let rbq = rb.query.clone();
    let rbtree = ViewTree::build(&rbq, &rb.order);
    let rball: Vec<usize> = (0..rbq.relations.len()).collect();
    let mut rblifts = LiftingMap::<f64>::new();
    rblifts.set(
        rbq.catalog.lookup("inventoryunits").unwrap(),
        Lifting::from_fn(|v: &Value| v.as_f64().unwrap()),
    );

    // String variant of the fig12 batch sweep: the same Housing shape
    // with string postcodes, SUM(price).
    let sb = housing::generate_string_postcodes(&HousingConfig {
        postcodes: 25_000,
        scale: 4,
        ..Default::default()
    });
    let sbq = sb.query.clone();
    let sbtree = ViewTree::build(&sbq, &sb.order);
    let sball: Vec<usize> = (0..sbq.relations.len()).collect();
    let mut sblifts = LiftingMap::<f64>::new();
    sblifts.set(
        sbq.catalog.lookup("price").unwrap(),
        Lifting::from_fn(|v: &Value| v.as_f64().unwrap()),
    );

    for &bs in &[1_000usize, 10_000, 100_000] {
        for (name, q, tree, all, lifts, batches) in [
            ("housing", &hbq, &hbtree, &hball, &hblifts, hb.stream(bs)),
            ("retailer", &rbq, &rbtree, &rball, &rblifts, rb.stream(bs)),
        ] {
            for fast in [true, false] {
                let tput = batch_throughput(q, tree, all, lifts, &batches, fast, 1);
                fig12.push_str(&format!(
                    ",\"fig12_{name}_bs{bs}_{}\":{tput:.0}",
                    if fast { "fast" } else { "general" },
                ));
            }
        }
        let tput = batch_throughput(&sbq, &sbtree, &sball, &sblifts, &sb.stream(bs), true, 1);
        fig12.push_str(&format!(",\"fig12_string_bs{bs}_fast\":{tput:.0}"));
    }

    // Parallel-propagation sweep (PR 3): the same flat batches through
    // the fast path at 1/2/4/8 workers. The w1 entry is the sequential
    // fallback (the pool never engages at one worker), so
    // `…_fast_w1 / …_fast` is the fallback's overhead and
    // `…_fast_wN / …_fast_w1` the scaling — on a multi-core host;
    // single-core containers time-slice the workers and show dispatch
    // overhead instead.
    for &bs in &[10_000usize, 100_000] {
        for (name, q, tree, all, lifts, batches) in [
            ("housing", &hbq, &hbtree, &hball, &hblifts, hb.stream(bs)),
            ("retailer", &rbq, &rbtree, &rball, &rblifts, rb.stream(bs)),
        ] {
            for workers in [1usize, 2, 4, 8] {
                let tput = batch_throughput(q, tree, all, lifts, &batches, true, workers);
                fig12.push_str(&format!(
                    ",\"fig12_{name}_bs{bs}_fast_w{workers}\":{tput:.0}"
                ));
            }
        }
    }

    // fig6 path (PR 5 headline): rank-1 updates to A₂ of the n×n
    // 3-chain through the relational engine as **factored deltas**
    // (u[X2] ⊗ v[X3]) — compiled factored path vs the general factor
    // path — plus the flat foil (the same update multiplied out into
    // its n²-entry listing form through the flat fast path) and a
    // rank-8 sweep. One-row updates (sparse e_row u), the Figure 6
    // left workload; updates are pre-built, engines rebuilt per
    // repetition, best of 3.
    let fig6 = {
        use fivm_linalg::{EngineChainIvm, Matrix};
        use rand::SeedableRng;
        let n = 96usize;
        let chain: Vec<Matrix> = matrices::random_chain(3, n, 42)
            .iter()
            .map(|d| Matrix::from_fn(n, n, |i, j| d[i * n + j]))
            .collect();
        let mut rng = rand::rngs::SmallRng::seed_from_u64(7);
        let rank1: Vec<(Vec<f64>, Vec<f64>)> = (0..120)
            .map(|i| matrices::one_row_update(n, (i * 13) % n, &mut rng))
            .collect();
        let run = |updates: &[(Vec<f64>, Vec<f64>)], fast: bool, flat: bool| -> f64 {
            (0..3)
                .map(|_| {
                    let mut m = EngineChainIvm::new(chain.clone());
                    m.set_fast_path(fast);
                    let start = Instant::now();
                    for (u, v) in updates {
                        if flat {
                            m.apply_rank1_flat(1, u, v);
                        } else {
                            m.apply_rank1(1, u, v);
                        }
                    }
                    updates.len() as f64 / start.elapsed().as_secs_f64().max(1e-9)
                })
                .fold(0.0f64, f64::max)
        };
        let fact_fast = run(&rank1, true, false);
        // Both foils are subsampled: they run 1–2 orders of magnitude
        // slower than the compiled path (that is the finding), and the
        // per-update rate is what the ratio needs — measuring all 120
        // updates through the general path would add ~2 min to every
        // CI smoke run for the same number.
        let fact_general = run(&rank1[..12], false, false);
        let flat_foil = run(&rank1[..30], true, true);
        let rank8 = matrices::rank_r_update(n, 8, &mut rng);
        let rank8_fast = (0..3)
            .map(|_| {
                let mut m = EngineChainIvm::new(chain.clone());
                let start = Instant::now();
                for _ in 0..4 {
                    m.apply_rank_r(1, &rank8);
                }
                32.0 / start.elapsed().as_secs_f64().max(1e-9)
            })
            .fold(0.0f64, f64::max);
        format!(
            ",\"fig6_n\":{n},\
             \"fig6_rank1_factored_fast\":{fact_fast:.0},\
             \"fig6_rank1_factored_general\":{fact_general:.0},\
             \"fig6_rank1_speedup_fast_over_general\":{:.2},\
             \"fig6_rank1_flat_foil\":{flat_foil:.0},\
             \"fig6_rank8_factored_fast\":{rank8_fast:.0}",
            fact_fast / fact_general.max(1e-9)
        )
    };

    // Durability (PR 6): the same pre-built fig11 updates through a
    // WAL-logged engine (group commit, no fsync per update — the
    // default config) vs the plain engine measured above; recovery
    // wall-time as a function of the log tail replayed; and a
    // checkpoint-interval sweep showing the logging-side and
    // recovery-side cost of checkpoint cadence. The <15% logging
    // overhead budget is asserted, not just recorded.
    let durability = {
        use fivm_durability::{DurabilityConfig, DurableEngine};
        use std::sync::atomic::{AtomicU64, Ordering};
        fn bench_dir(tag: &str) -> std::path::PathBuf {
            static N: AtomicU64 = AtomicU64::new(0);
            let d = std::env::temp_dir().join(format!(
                "fivm-bench-dur-{tag}-{}-{}",
                std::process::id(),
                // relaxed-ok: unique-id counter; no ordering needed.
                N.fetch_add(1, Ordering::Relaxed)
            ));
            let _ = std::fs::remove_dir_all(&d);
            d
        }
        let manual = DurabilityConfig {
            checkpoint_every: 0,
            ..DurabilityConfig::default()
        };

        // Logging-overhead A/B, best of 3 on both sides (htput above).
        let logged_tput = (0..3)
            .map(|_| {
                let dir = bench_dir("ab");
                let engine =
                    fivm_engine::IvmEngine::new(hq.clone(), htree.clone(), &hall, hlifts.clone());
                let mut d = DurableEngine::create(&dir, engine, manual.clone()).unwrap();
                let start = Instant::now();
                for (rel, dl) in &hupdates {
                    d.apply(*rel, dl).unwrap();
                }
                let tput = hupdates.len() as f64 / start.elapsed().as_secs_f64().max(1e-9);
                drop(d);
                let _ = std::fs::remove_dir_all(&dir);
                tput
            })
            .fold(0.0f64, f64::max);
        let overhead_pct = (htput / logged_tput.max(1e-9) - 1.0) * 100.0;
        assert!(
            overhead_pct < 15.0,
            "WAL logging overhead {overhead_pct:.1}% exceeds the 15% budget \
             (plain {htput:.0}/s vs logged {logged_tput:.0}/s)"
        );
        let mut out = format!(
            ",\"fig11_logged_sum_star\":{logged_tput:.0},\
             \"fig11_logging_overhead_pct\":{overhead_pct:.1}"
        );

        // Recovery wall-time vs replayed log-tail length: one
        // checkpoint at LSN 0, then an n-update tail. The single-tuple
        // fig11 updates are cycled to reach each length.
        for n in [1_000usize, 10_000, 30_000] {
            let dir = bench_dir("tail");
            let engine =
                fivm_engine::IvmEngine::new(hq.clone(), htree.clone(), &hall, hlifts.clone());
            let mut d = DurableEngine::create(&dir, engine, manual.clone()).unwrap();
            for (rel, dl) in hupdates.iter().cycle().take(n) {
                d.apply(*rel, dl).unwrap();
            }
            d.sync_all().unwrap();
            drop(d);
            let engine =
                fivm_engine::IvmEngine::new(hq.clone(), htree.clone(), &hall, hlifts.clone());
            let start = Instant::now();
            let (_r, report) = DurableEngine::open(&dir, engine, manual.clone()).unwrap();
            let ms = start.elapsed().as_secs_f64() * 1e3;
            assert_eq!(report.replayed_updates, n as u64);
            out.push_str(&format!(",\"recovery_tail{n}_ms\":{ms:.1}"));
            let _ = std::fs::remove_dir_all(&dir);
        }

        // Checkpoint-interval sweep over a fixed 30k-update stream:
        // denser checkpoints tax the logging side (snapshot writes) and
        // pay off at recovery (shorter tail), sparser the reverse.
        for every in [1_000u64, 10_000, 100_000] {
            let dir = bench_dir("ckpt");
            let cfg = DurabilityConfig {
                checkpoint_every: every,
                ..DurabilityConfig::default()
            };
            let engine =
                fivm_engine::IvmEngine::new(hq.clone(), htree.clone(), &hall, hlifts.clone());
            let mut d = DurableEngine::create(&dir, engine, cfg.clone()).unwrap();
            let start = Instant::now();
            for (rel, dl) in hupdates.iter().cycle().take(30_000) {
                d.apply(*rel, dl).unwrap();
            }
            let tput = 30_000.0 / start.elapsed().as_secs_f64().max(1e-9);
            d.sync_all().unwrap();
            drop(d);
            let engine =
                fivm_engine::IvmEngine::new(hq.clone(), htree.clone(), &hall, hlifts.clone());
            let start = Instant::now();
            let (_r, report) = DurableEngine::open(&dir, engine, cfg).unwrap();
            let ms = start.elapsed().as_secs_f64() * 1e3;
            assert!(report.replayed_updates <= every);
            out.push_str(&format!(
                ",\"logged_tput_ckpt_every{every}\":{tput:.0},\
                 \"recovery_ckpt_every{every}_ms\":{ms:.1}"
            ));
            let _ = std::fs::remove_dir_all(&dir);
        }
        out
    };

    // Serving layer (PR 7): epoch-snapshot reads + subscriptions over
    // the fig11 writer.
    //
    // * `serving_writer_tput`: the same pre-built fig11 updates through
    //   `ServingEngine::apply` with no publishes in the timed loop —
    //   the epoch layer's promise is that *between* publishes the
    //   single-tuple maintenance path pays nothing, asserted as a <10%
    //   budget against the plain-engine `fig11_sum_star` above.
    // * `serving_publish_ms`: one full copy-on-write epoch build with
    //   every store dirty (the worst case; clean stores are carried by
    //   reference and cost nothing).
    // * `serving_writer_tput_pub16k`: publish every 16 384 updates —
    //   the amortized cost of a realistic refresh cadence.
    // * `serving_reader_agg_K`: aggregate reader ops/s (pin + 64 point
    //   probes + a 32-entry enumeration slice per pin) at K = 1/2/4/8
    //   reader threads against a live writer publishing at the 16k
    //   cadence. Scaling is asserted only on ≥4-core hosts;
    //   single-core containers time-slice the readers.
    let serving = {
        use fivm_engine::ServingEngine;
        use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

        // Writer A/B: no publishes in the loop (one at the end, after
        // the timer, so the epoch machinery is exercised but unbilled).
        let serving_tput = (0..3)
            .map(|_| {
                let engine =
                    fivm_engine::IvmEngine::new(hq.clone(), htree.clone(), &hall, hlifts.clone());
                let mut s = ServingEngine::new(engine);
                let start = Instant::now();
                for (rel, d) in &hupdates {
                    s.apply(*rel, d);
                }
                let tput = hupdates.len() as f64 / start.elapsed().as_secs_f64().max(1e-9);
                s.publish();
                tput
            })
            .fold(0.0f64, f64::max);
        let writer_overhead_pct = (htput / serving_tput.max(1e-9) - 1.0) * 100.0;
        assert!(
            writer_overhead_pct < 10.0,
            "serving-layer writer overhead {writer_overhead_pct:.1}% exceeds the 10% budget \
             (plain {htput:.0}/s vs serving {serving_tput:.0}/s)"
        );

        // Worst-case publish: every store dirty, full COW clone.
        let (publish_ms, probe_node) = {
            let engine =
                fivm_engine::IvmEngine::new(hq.clone(), htree.clone(), &hall, hlifts.clone());
            let mut s = ServingEngine::new(engine);
            for (rel, d) in &hupdates {
                s.apply(*rel, d);
            }
            let start = Instant::now();
            let snap = s.publish();
            let ms = start.elapsed().as_secs_f64() * 1e3;
            // Probe target for the reader sweep: the largest non-root
            // view (a postcode-keyed branch view).
            let root = s.engine().tree().root;
            let node = s
                .engine()
                .materialized_nodes()
                .into_iter()
                .filter(|&n| n != root)
                .max_by_key(|&n| snap.view(n).map_or(0, |v| v.len()))
                .unwrap_or(root);
            (ms, node)
        };

        // Amortized publish cadence.
        let pub16k_tput = (0..3)
            .map(|_| {
                let engine =
                    fivm_engine::IvmEngine::new(hq.clone(), htree.clone(), &hall, hlifts.clone());
                let mut s = ServingEngine::new(engine).with_publish_every(16_384);
                let start = Instant::now();
                for (rel, d) in &hupdates {
                    s.apply(*rel, d);
                }
                hupdates.len() as f64 / start.elapsed().as_secs_f64().max(1e-9)
            })
            .fold(0.0f64, f64::max);

        // Reader scaling against a live writer.
        let probe_keys: Vec<fivm_core::Tuple> = (0..1024)
            .map(|i| fivm_core::Tuple::new(vec![Value::Int((i * 19) % 20_000)]))
            .collect();
        let mut out = format!(
            ",\"serving_writer_tput\":{serving_tput:.0},\
             \"serving_writer_overhead_pct\":{writer_overhead_pct:.1},\
             \"serving_publish_ms\":{publish_ms:.1},\
             \"serving_writer_tput_pub16k\":{pub16k_tput:.0}"
        );
        let mut agg_by_readers = Vec::new();
        for readers in [1usize, 2, 4, 8] {
            let engine =
                fivm_engine::IvmEngine::new(hq.clone(), htree.clone(), &hall, hlifts.clone());
            let mut s = ServingEngine::new(engine).with_publish_every(16_384);
            let stop = AtomicBool::new(false);
            let ops = AtomicU64::new(0);
            let elapsed = std::thread::scope(|scope| {
                for _ in 0..readers {
                    let reader = s.reader();
                    let stop = &stop;
                    let ops = &ops;
                    let keys = &probe_keys;
                    scope.spawn(move || {
                        let mut i = 0usize;
                        let mut local = 0u64;
                        // relaxed-ok: bench stop flag; eventual
                        // visibility is all the loop needs.
                        while !stop.load(Ordering::Relaxed) {
                            let snap = reader.pin();
                            for _ in 0..64 {
                                i = (i + 1) % keys.len();
                                if snap.get(probe_node, &keys[i]).is_some() {
                                    local += 1;
                                }
                            }
                            local += snap.iter(probe_node).take(32).count() as u64;
                            // relaxed-ok: throughput counter only.
                            ops.fetch_add(65, Ordering::Relaxed);
                        }
                        let _ = local;
                    });
                }
                let start = Instant::now();
                for _ in 0..3 {
                    for (rel, d) in &hupdates {
                        s.apply(*rel, d);
                    }
                }
                let elapsed = start.elapsed().as_secs_f64().max(1e-9);
                stop.store(true, Ordering::Relaxed); // relaxed-ok: bench stop flag.
                elapsed
            });
            // relaxed-ok: counter read after the scope joined all readers.
            let agg = ops.load(Ordering::Relaxed) as f64 / elapsed;
            agg_by_readers.push((readers, agg));
            out.push_str(&format!(",\"serving_reader_agg_{readers}\":{agg:.0}"));
        }
        let one = agg_by_readers[0].1;
        let best = agg_by_readers
            .iter()
            .map(|&(_, a)| a)
            .fold(0.0f64, f64::max);
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        if cores >= 4 {
            assert!(
                best > 1.3 * one,
                "readers do not scale: best aggregate {best:.0}/s vs 1-reader {one:.0}/s \
                 on a {cores}-core host"
            );
        }
        out.push_str(&format!(
            ",\"serving_reader_scaling_best_over_1\":{:.2}",
            best / one.max(1e-9)
        ));
        out
    };

    println!(
        "{{\"bench\":\"smoke\",\"unit\":\"single_tuple_updates_per_sec\",\
         \"fig11_sum_star\":{htput:.0},\"fig11_tuples\":{},\
         \"fig13_triangle\":{ttput:.0},\"fig13_tuples\":{},\
         \"fig11_control_sum_price\":{hctput:.0},\
         \"fig11_string_sum_star\":{hstput:.0},\
         \"fig13_string_triangle\":{thtput:.0}\
         {hl_crossover}{foil}{fig6}{fig12}{durability}{serving}}}",
        hupdates.len(),
        tupdates.len(),
    );
}

/// Figure 6 (left): one-row updates to A₂ in A₁A₂A₃ across matrix
/// dimensions; F-IVM (factorized) vs 1-IVM vs RE-EVAL, dense (“Octave”)
/// and hash runtimes.
fn fig6_left(s: &Scale) {
    println!("== Figure 6 (left): matrix chain, one-row updates to A2 ==");
    println!(
        "{:>6} {:>14} {:>14} {:>14} {:>14} {:>14}",
        "n", "F-IVM", "1-IVM", "RE-EVAL", "F-IVM(hash)", "hash-general"
    );
    for &n in &s.matrix_dims {
        let chain = matrices::random_chain(3, n, 42);
        let dense: Vec<Matrix> = chain
            .iter()
            .map(|d| Matrix::from_fn(n, n, |i, j| d[i * n + j]))
            .collect();
        let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(7);
        let n_updates = if n >= 512 { 3 } else { 8 };
        let updates: Vec<(Vec<f64>, Vec<f64>)> = (0..n_updates)
            .map(|i| matrices::one_row_update(n, (i * 13) % n, &mut rng))
            .collect();

        let mut fivm = DenseChainIvm::new(dense.clone());
        let t_f = time(|| {
            for (u, v) in &updates {
                fivm.apply_rank1(1, u, v);
            }
        }) / n_updates as u32;

        let mut fo = FirstOrderChain::new(dense.clone());
        let t_1 = time(|| {
            for (u, v) in &updates {
                let mut d = Matrix::zeros(n, n);
                d.add_outer(u, v);
                fo.apply(1, &d);
            }
        }) / n_updates as u32;

        let mut re = ReEvalChain::new(dense.clone());
        let t_r = time(|| {
            for (u, v) in &updates {
                let mut d = Matrix::zeros(n, n);
                d.add_outer(u, v);
                re.apply(1, &d);
            }
        }) / n_updates as u32;

        // hash runtime: the relational engine with factored deltas —
        // once through the compiled factored fast path, once through
        // the general factor path (the interpretation foil).
        let mut engine = fivm_linalg::EngineChainIvm::new(dense.clone());
        let t_h = time(|| {
            for (u, v) in &updates {
                engine.apply_rank1(1, u, v);
            }
        }) / n_updates as u32;
        let mut engine_gen = fivm_linalg::EngineChainIvm::new(dense);
        engine_gen.set_fast_path(false);
        let t_g = time(|| {
            for (u, v) in &updates {
                engine_gen.apply_rank1(1, u, v);
            }
        }) / n_updates as u32;

        println!(
            "{n:>6} {:>14} {:>14} {:>14} {:>14} {:>14}",
            fmt_dur(t_f),
            fmt_dur(t_1),
            fmt_dur(t_r),
            fmt_dur(t_h),
            fmt_dur(t_g)
        );
    }
    println!();
}

/// Figure 6 (right): rank-r updates at fixed n; F-IVM linear in r vs
/// one re-evaluation.
fn fig6_right(s: &Scale) {
    let n = s.rank_n;
    println!("== Figure 6 (right): rank-r updates to A2, n = {n} ==");
    let chain = matrices::random_chain(3, n, 43);
    let dense: Vec<Matrix> = chain
        .iter()
        .map(|d| Matrix::from_fn(n, n, |i, j| d[i * n + j]))
        .collect();
    let t_re = time(|| {
        let _ = ReEvalChain::new(dense.clone()); // one full evaluation
    });
    println!("RE-EVAL (once): {}", fmt_dur(t_re));
    println!("{:>6} {:>14} {:>10}", "r", "F-IVM", "vs RE-EVAL");
    let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(9);
    for &r in &s.ranks {
        let factors = matrices::rank_r_update(n, r, &mut rng);
        let mut fivm = DenseChainIvm::new(dense.clone());
        let t = time(|| fivm.apply_rank_r(1, &factors));
        println!(
            "{r:>6} {:>14} {:>9.2}x",
            fmt_dur(t),
            t_re.as_secs_f64() / t.as_secs_f64().max(1e-12)
        );
    }
    println!();
}

/// Figure 7: cofactor-matrix maintenance on Retailer and Housing —
/// throughput and memory per strategy, plus the ONE (largest-relation
/// only) variants on Retailer.
fn fig7(s: &Scale) {
    println!("== Figure 7: cofactor matrix maintenance (batches of 1000) ==");
    let budget = Budget { timeout: s.timeout };

    // ---------- Retailer ----------
    let r = retailer::generate(&s.retailer);
    let q = r.query.clone();
    let tree = ViewTree::build(&q, &r.order);
    let spec = CofactorSpec::over_all_vars(&q);
    let all: Vec<usize> = (0..q.relations.len()).collect();
    let batches = r.stream(1000);
    println!(
        "\nRetailer ({} tuples, m = {}, {} aggregates):",
        batches.iter().map(|b| b.tuples.len()).sum::<usize>(),
        spec.m(),
        spec.aggregate_count()
    );
    println!(
        "{:<14} {:>13} {:>12} {:>8} {:>9}",
        "strategy", "tuples/s", "memory", "views", "done"
    );

    let mut fivm = FIvmMaintainer::<Cofactor>::new(q.clone(), tree.clone(), &all, spec.liftings());
    report("F-IVM", run_stream(&mut fivm, &batches, budget));
    let mut sqlopt = FIvmMaintainer::<fivm_core::ring::degree::DegreeRing>::new(
        q.clone(),
        tree.clone(),
        &all,
        spec.degree_liftings(),
    );
    report("SQL-OPT", run_stream(&mut sqlopt, &batches, budget));
    let mut dbt_ring = RecursiveMaintainer::<Cofactor>::new(q.clone(), &all, spec.liftings());
    report("DBT-RING", run_stream(&mut dbt_ring, &batches, budget));

    // scalar fleets (DBT / 1-IVM): one engine per aggregate — capped at
    // small scale to keep the run finite; the paper reports both as
    // timing out on Retailer.
    let aggs: Vec<LiftingMap<f64>> = spec
        .scalar_aggregates()
        .into_iter()
        .take(s.scalar_fleet_cap)
        .map(|(_, l)| l)
        .collect();
    let n_aggs = aggs.len();
    let mut dbt = ScalarFleet::new(ScalarKind::Recursive, q.clone(), &tree, &all, aggs.clone());
    report(
        &format!("DBT({n_aggs}agg)"),
        run_stream(&mut dbt, &batches, budget),
    );
    let mut oivm = ScalarFleet::new(ScalarKind::FirstOrder, q.clone(), &tree, &all, aggs);
    report(
        &format!("1-IVM({n_aggs}agg)"),
        run_stream(&mut oivm, &batches, budget),
    );

    // ONE variants: updates to the largest relation only
    let one_batches = r.stream_largest_only(1000);
    let mut static_db = fivm_engine::Database::<Cofactor>::empty(&q);
    for (ri, tuples) in r.tuples.iter().enumerate() {
        if ri != r.largest {
            for t in tuples {
                static_db.relations[ri].insert(t.clone(), Cofactor::one());
            }
        }
    }
    let mut fivm_one =
        FIvmMaintainer::<Cofactor>::new(q.clone(), tree.clone(), &[r.largest], spec.liftings());
    fivm_one.engine.load(&static_db);
    report("F-IVM ONE", run_stream(&mut fivm_one, &one_batches, budget));
    let mut sql_one = FIvmMaintainer::<fivm_core::ring::degree::DegreeRing>::new(
        q.clone(),
        tree.clone(),
        &[r.largest],
        spec.degree_liftings(),
    );
    let mut static_db_deg = fivm_engine::Database::<fivm_core::ring::degree::DegreeRing>::empty(&q);
    for (ri, tuples) in r.tuples.iter().enumerate() {
        if ri != r.largest {
            for t in tuples {
                static_db_deg.relations[ri]
                    .insert(t.clone(), fivm_core::ring::degree::DegreeRing::one());
            }
        }
    }
    sql_one.engine.load(&static_db_deg);
    report(
        "SQL-OPT ONE",
        run_stream(&mut sql_one, &one_batches, budget),
    );

    // ---------- Housing ----------
    let h = housing::generate(&HousingConfig {
        postcodes: s.housing_postcodes,
        scale: 1,
        ..Default::default()
    });
    let hq = h.query.clone();
    let htree = ViewTree::build(&hq, &h.order);
    let hspec = CofactorSpec::over_all_vars(&hq);
    let hall: Vec<usize> = (0..hq.relations.len()).collect();
    let hbatches = h.stream(1000);
    println!(
        "\nHousing ({} tuples, m = {}, {} aggregates):",
        h.total_tuples(),
        hspec.m(),
        hspec.aggregate_count()
    );
    println!(
        "{:<14} {:>13} {:>12} {:>8} {:>9}",
        "strategy", "tuples/s", "memory", "views", "done"
    );
    let mut hf =
        FIvmMaintainer::<Cofactor>::new(hq.clone(), htree.clone(), &hall, hspec.liftings());
    report("F-IVM", run_stream(&mut hf, &hbatches, budget));
    let mut hs = FIvmMaintainer::<fivm_core::ring::degree::DegreeRing>::new(
        hq.clone(),
        htree.clone(),
        &hall,
        hspec.degree_liftings(),
    );
    report("SQL-OPT", run_stream(&mut hs, &hbatches, budget));
    let mut hd = RecursiveMaintainer::<Cofactor>::new(hq.clone(), &hall, hspec.liftings());
    report("DBT-RING", run_stream(&mut hd, &hbatches, budget));
    let haggs: Vec<LiftingMap<f64>> = hspec
        .scalar_aggregates()
        .into_iter()
        .take(s.scalar_fleet_cap)
        .map(|(_, l)| l)
        .collect();
    let hn = haggs.len();
    let mut hdbt = ScalarFleet::new(
        ScalarKind::Recursive,
        hq.clone(),
        &htree,
        &hall,
        haggs.clone(),
    );
    report(
        &format!("DBT({hn}agg)"),
        run_stream(&mut hdbt, &hbatches, budget),
    );
    let mut hoivm = ScalarFleet::new(ScalarKind::FirstOrder, hq.clone(), &htree, &hall, haggs);
    report(
        &format!("1-IVM({hn}agg)"),
        run_stream(&mut hoivm, &hbatches, budget),
    );
    println!();
}

/// Figure 8: conjunctive-query maintenance with factorized payloads vs
/// listing payloads vs listing keys, on Retailer (largest-relation
/// stream) and Housing (scale sweep).
fn fig8(s: &Scale) {
    println!("== Figure 8: factorized vs listing representations ==");
    let budget = Budget { timeout: s.timeout };

    // ---------- Retailer, updates to Inventory only ----------
    let mut cfg = s.retailer.clone();
    cfg.inventory_rows = (cfg.inventory_rows / 4).max(1000); // join output is large
    let r = retailer::generate(&cfg);
    let q = r.query.clone();
    let tree = ViewTree::build(&q, &r.order);
    let batches = r.stream_largest_only(1000);
    println!("\nRetailer natural join, updates to Inventory only:");
    println!(
        "{:<16} {:>13} {:>12} {:>9}",
        "mode", "tuples/s", "memory", "done"
    );

    let cq_lifts = cq_liftings(&q);
    for (label, transform) in [("List payloads", false), ("Fact payloads", true)] {
        let mut engine = fivm_engine::IvmEngine::<RelPayload>::new(
            q.clone(),
            tree.clone(),
            &[r.largest],
            cq_lifts.clone(),
        );
        if transform {
            engine = engine
                .with_payload_transform(factorized_transform(&tree))
                .with_payload_preprojection(factorized_preprojection());
        }
        let mut static_db = fivm_engine::Database::<RelPayload>::empty(&q);
        for (ri, tuples) in r.tuples.iter().enumerate() {
            if ri != r.largest {
                for t in tuples {
                    static_db.relations[ri].insert(t.clone(), RelPayload::one());
                }
            }
        }
        engine.load(&static_db);
        let mut m = FIvmMaintainer::from_engine(engine);
        let rep = run_stream(&mut m, &batches, budget);
        println!(
            "{label:<16} {} {:>12} {:>8.0}%",
            rep.display_throughput(),
            format_bytes(rep.bytes),
            rep.fraction * 100.0
        );
    }
    // listing keys: all variables free in the key space, Z payloads
    {
        let keys_q = retailer_keys_query();
        let vo = retailer::variable_order(&keys_q);
        let ktree = ViewTree::build(&keys_q, &vo);
        let mut engine = fivm_engine::IvmEngine::<i64>::new(
            keys_q.clone(),
            ktree,
            &[r.largest],
            LiftingMap::new(),
        );
        let mut static_db = fivm_engine::Database::<i64>::empty(&keys_q);
        for (ri, tuples) in r.tuples.iter().enumerate() {
            if ri != r.largest {
                for t in tuples {
                    static_db.relations[ri].insert(t.clone(), 1);
                }
            }
        }
        engine.load(&static_db);
        let mut m = FIvmMaintainer::from_engine(engine);
        let rep = run_stream(&mut m, &batches, budget);
        println!(
            "{:<16} {} {:>12} {:>8.0}%",
            "List keys",
            rep.display_throughput(),
            format_bytes(rep.bytes),
            rep.fraction * 100.0
        );
    }

    // ---------- Housing scale sweep ----------
    println!("\nHousing natural join, updates to all relations, per scale:");
    println!(
        "{:<7} {:>14} {:>12} {:>14} {:>12}",
        "scale", "Fact time", "Fact mem", "List time", "List mem"
    );
    for &sc in &s.housing_scales {
        let h = housing::generate(&HousingConfig {
            postcodes: (s.housing_postcodes / 4).max(50),
            scale: sc,
            ..Default::default()
        });
        let hq = h.query.clone();
        let htree = ViewTree::build(&hq, &h.order);
        let hall: Vec<usize> = (0..hq.relations.len()).collect();
        let hlifts = cq_liftings(&hq);
        let hbatches = h.stream(1000);
        let mut results = Vec::new();
        for transform in [true, false] {
            let mut engine = fivm_engine::IvmEngine::<RelPayload>::new(
                hq.clone(),
                htree.clone(),
                &hall,
                hlifts.clone(),
            );
            if transform {
                engine = engine
                    .with_payload_transform(factorized_transform(&htree))
                    .with_payload_preprojection(factorized_preprojection());
            }
            let mut m = FIvmMaintainer::from_engine(engine);
            let rep = run_stream(&mut m, &hbatches, budget);
            results.push(rep);
        }
        println!(
            "{sc:<7} {:>14} {:>12} {:>14} {:>12}",
            fmt_dur(results[0].elapsed),
            format_bytes(results[0].bytes),
            format!(
                "{}{}",
                fmt_dur(results[1].elapsed),
                if results[1].timed_out { "*" } else { "" }
            ),
            format_bytes(results[1].bytes),
        );
    }
    println!();
}

/// Figure 11 (table): maintenance of a single SUM aggregate.
fn fig11(s: &Scale) {
    println!("== Figure 11: SUM-aggregate maintenance (tuples/s, batches of 1000) ==");
    let budget = Budget { timeout: s.timeout };
    println!(
        "{:<10} {:>13} {:>13} {:>13} {:>13} {:>13}",
        "dataset", "F-IVM", "DBT", "1-IVM", "F-RE", "DBT-RE"
    );

    // Retailer: SUM(inventoryunits)
    let mut cfg = s.retailer.clone();
    cfg.inventory_rows /= 2;
    let r = retailer::generate(&cfg);
    let q = r.query.clone();
    let tree = ViewTree::build(&q, &r.order);
    let mut lifts = LiftingMap::<f64>::new();
    lifts.set(
        q.catalog.lookup("inventoryunits").unwrap(),
        Lifting::from_fn(|v: &Value| v.as_f64().unwrap()),
    );
    let batches = r.stream(1000);
    let row = sum_row(&q, &tree, &lifts, &batches, budget);
    println!("{:<10} {row}", "Retailer");

    // Housing: SUM(postcode)
    let h = housing::generate(&HousingConfig {
        postcodes: s.housing_postcodes,
        scale: 1,
        ..Default::default()
    });
    let hq = h.query.clone();
    let htree = ViewTree::build(&hq, &h.order);
    let mut hlifts = LiftingMap::<f64>::new();
    hlifts.set(
        hq.catalog.lookup("postcode").unwrap(),
        Lifting::from_fn(|v: &Value| v.as_f64().unwrap()),
    );
    let hb = h.stream(1000);
    let hrow = sum_row(&hq, &htree, &hlifts, &hb, budget);
    println!("{:<10} {hrow}", "Housing");
    println!();
}

fn sum_row(
    q: &QueryDef,
    tree: &ViewTree,
    lifts: &LiftingMap<f64>,
    batches: &[fivm_data::Batch],
    budget: Budget,
) -> String {
    let all: Vec<usize> = (0..q.relations.len()).collect();
    let mut fivm = FIvmMaintainer::<f64>::new(q.clone(), tree.clone(), &all, lifts.clone());
    let a = run_stream(&mut fivm, batches, budget);
    let mut dbt = RecursiveMaintainer::<f64>::new(q.clone(), &all, lifts.clone());
    let b = run_stream(&mut dbt, batches, budget);
    let mut fleet = ScalarFleet::new(
        ScalarKind::FirstOrder,
        q.clone(),
        tree,
        &all,
        vec![lifts.clone()],
    );
    let c = run_stream(&mut fleet, batches, budget);
    let mut fre = FReMaintainer::new(q.clone(), tree.clone(), lifts.clone());
    let d = run_stream(&mut fre, batches, budget);
    let mut dre = DbtReMaintainer::new(q.clone(), lifts.clone());
    let e = run_stream(&mut dre, batches, budget);
    format!(
        "{} {} {} {} {}",
        a.display_throughput(),
        b.display_throughput(),
        c.display_throughput(),
        d.display_throughput(),
        e.display_throughput()
    )
}

/// Figure 12: batch-size sweep for cofactor maintenance.
fn fig12(s: &Scale) {
    println!("== Figure 12: effect of batch size on cofactor maintenance (tuples/s) ==");
    let budget = Budget { timeout: s.timeout };
    print!("{:<22}", "dataset/strategy");
    for &bs in &s.batch_sizes {
        print!(" {:>12}", format!("BS={bs}"));
    }
    println!();

    // Retailer: F-IVM and SQL-OPT
    let mut cfg = s.retailer.clone();
    cfg.inventory_rows /= 2;
    let r = retailer::generate(&cfg);
    let q = r.query.clone();
    let tree = ViewTree::build(&q, &r.order);
    let spec = CofactorSpec::over_all_vars(&q);
    let all: Vec<usize> = (0..q.relations.len()).collect();
    for (name, sqlopt) in [("Retailer/F-IVM", false), ("Retailer/SQL-OPT", true)] {
        print!("{name:<22}");
        for &bs in &s.batch_sizes {
            let batches = r.stream(bs);
            let tput = if sqlopt {
                let mut m = FIvmMaintainer::<fivm_core::ring::degree::DegreeRing>::new(
                    q.clone(),
                    tree.clone(),
                    &all,
                    spec.degree_liftings(),
                );
                run_stream(&mut m, &batches, budget)
            } else {
                let mut m =
                    FIvmMaintainer::<Cofactor>::new(q.clone(), tree.clone(), &all, spec.liftings());
                run_stream(&mut m, &batches, budget)
            };
            print!(" {}", tput.display_throughput());
        }
        println!();
    }

    // Housing: F-IVM (== DBT-RING on star joins)
    let h = housing::generate(&HousingConfig {
        postcodes: s.housing_postcodes,
        scale: 1,
        ..Default::default()
    });
    let hq = h.query.clone();
    let htree = ViewTree::build(&hq, &h.order);
    let hspec = CofactorSpec::over_all_vars(&hq);
    let hall: Vec<usize> = (0..hq.relations.len()).collect();
    print!("{:<22}", "Housing/F-IVM");
    for &bs in &s.batch_sizes {
        let batches = h.stream(bs);
        let mut m =
            FIvmMaintainer::<Cofactor>::new(hq.clone(), htree.clone(), &hall, hspec.liftings());
        let rep = run_stream(&mut m, &batches, budget);
        print!(" {}", rep.display_throughput());
    }
    println!();

    // Twitter: F-IVM over the triangle
    let t = twitter::generate(&s.twitter);
    let tq = t.query.clone();
    let mut ttree = ViewTree::build(&tq, &t.order);
    fivm_query::add_indicators(&mut ttree, &tq);
    let tspec = CofactorSpec::over_all_vars(&tq);
    let tall = [0usize, 1, 2];
    print!("{:<22}", "Twitter/F-IVM");
    for &bs in &s.batch_sizes {
        let batches = t.stream(bs);
        let mut m =
            FIvmMaintainer::<Cofactor>::new(tq.clone(), ttree.clone(), &tall, tspec.liftings());
        let rep = run_stream(&mut m, &batches, budget);
        print!(" {}", rep.display_throughput());
    }
    println!("\n");
}

/// Figure 13: cofactor matrix over the triangle query on Twitter.
fn fig13(s: &Scale) {
    println!("== Figure 13: cofactor over the triangle query (Twitter) ==");
    let budget = Budget { timeout: s.timeout };
    let t = twitter::generate(&s.twitter);
    let q = t.query.clone();
    let spec = CofactorSpec::over_all_vars(&q);
    let all = [0usize, 1, 2];
    let batches = t.stream(1000);
    println!(
        "graph: {} edges; updates of 1000 to all relations",
        s.twitter.edges
    );
    println!(
        "{:<14} {:>13} {:>12} {:>8} {:>9}",
        "strategy", "tuples/s", "memory", "views", "done"
    );

    let plain = ViewTree::build(&q, &t.order);
    let mut with_ind = plain.clone();
    fivm_query::add_indicators(&mut with_ind, &q);

    let mut fivm =
        FIvmMaintainer::<Cofactor>::new(q.clone(), with_ind.clone(), &all, spec.liftings());
    report("F-IVM", run_stream(&mut fivm, &batches, budget));
    let mut plain_m =
        FIvmMaintainer::<Cofactor>::new(q.clone(), plain.clone(), &all, spec.liftings());
    report("F-IVM no-ind", run_stream(&mut plain_m, &batches, budget));
    let mut dbt_ring = RecursiveMaintainer::<Cofactor>::new(q.clone(), &all, spec.liftings());
    report("DBT-RING", run_stream(&mut dbt_ring, &batches, budget));
    let aggs: Vec<LiftingMap<f64>> = spec
        .scalar_aggregates()
        .into_iter()
        .map(|(_, l)| l)
        .collect();
    let mut dbt = ScalarFleet::new(ScalarKind::Recursive, q.clone(), &plain, &all, aggs.clone());
    report("DBT(10agg)", run_stream(&mut dbt, &batches, budget));
    let mut oivm = ScalarFleet::new(ScalarKind::FirstOrder, q.clone(), &plain, &all, aggs);
    report("1-IVM(10agg)", run_stream(&mut oivm, &batches, budget));

    // ONE: updates to R only, S and T static
    let one = t.stream_r_only(1000);
    let mut static_db = fivm_engine::Database::<Cofactor>::empty(&q);
    for ri in 1..3 {
        for tu in &t.tuples[ri] {
            static_db.relations[ri].insert(tu.clone(), Cofactor::one());
        }
    }
    let mut fone = FIvmMaintainer::<Cofactor>::new(q.clone(), with_ind, &[0], spec.liftings());
    fone.engine.load(&static_db);
    report("F-IVM ONE", run_stream(&mut fone, &one, budget));
    println!();
}

/// §7 view counts per strategy.
fn view_counts() {
    println!("== View counts (§7) ==");
    let r = retailer::query();
    let rtree = ViewTree::build(&r, &retailer::variable_order(&r));
    let rall: Vec<usize> = (0..r.relations.len()).collect();
    let rspec = CofactorSpec::over_all_vars(&r);
    let rdbt: fivm_engine::RecursiveIvm<Cofactor> =
        fivm_engine::RecursiveIvm::new(r.clone(), &rall, rspec.liftings());
    println!(
        "Retailer: F-IVM {} views (paper: 9), DBT-RING {} (paper: 13), \
         scalar aggregates {} (paper: 990)",
        rtree.inner_count(),
        rdbt.stored_view_count(),
        rspec.aggregate_count()
    );
    let h = housing::query();
    let htree = ViewTree::build(&h, &housing::variable_order(&h));
    let hall: Vec<usize> = (0..h.relations.len()).collect();
    let hspec = CofactorSpec::over_all_vars(&h);
    let hdbt: fivm_engine::RecursiveIvm<Cofactor> =
        fivm_engine::RecursiveIvm::new(h.clone(), &hall, hspec.liftings());
    println!(
        "Housing:  F-IVM {} views (paper: 7), DBT-RING {} (paper: 7), \
         scalar aggregates {} (paper: 406)",
        htree.inner_count(),
        hdbt.stored_view_count(),
        hspec.aggregate_count()
    );
    println!();
}

// ---------- helpers ----------

fn time(f: impl FnOnce()) -> Duration {
    let t = Instant::now();
    f();
    t.elapsed()
}

fn fmt_dur(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1.0 {
        format!("{s:.2}s")
    } else if s >= 1e-3 {
        format!("{:.2}ms", s * 1e3)
    } else {
        format!("{:.1}µs", s * 1e6)
    }
}

fn report(label: &str, rep: StreamReport) {
    println!(
        "{label:<14} {} {:>12} {:>8} {:>8.0}%",
        rep.display_throughput(),
        format_bytes(rep.bytes),
        rep.views,
        rep.fraction * 100.0
    );
}

/// CQ liftings: every variable lifts to a singleton relation.
fn cq_liftings(q: &QueryDef) -> LiftingMap<RelPayload> {
    let mut lifts = LiftingMap::new();
    for &v in q.all_vars().iter() {
        lifts.set(
            v,
            Lifting::from_fn(move |val: &Value| RelPayload::lift_free(Schema::new(vec![v]), val)),
        );
    }
    lifts
}

/// Retailer query with every variable free (the “List keys” encoding).
fn retailer_keys_query() -> QueryDef {
    let q = retailer::query();
    let names: Vec<String> = q
        .all_vars()
        .iter()
        .map(|&v| q.catalog.name(v).to_string())
        .collect();
    let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
    let rels: Vec<(String, Vec<String>)> = q
        .relations
        .iter()
        .map(|r| {
            (
                r.name.clone(),
                r.schema
                    .iter()
                    .map(|&v| q.catalog.name(v).to_string())
                    .collect(),
            )
        })
        .collect();
    let rel_refs: Vec<(&str, Vec<&str>)> = rels
        .iter()
        .map(|(n, a)| (n.as_str(), a.iter().map(String::as_str).collect()))
        .collect();
    let rel_slices: Vec<(&str, &[&str])> =
        rel_refs.iter().map(|(n, a)| (*n, a.as_slice())).collect();
    QueryDef::new(&rel_slices, &name_refs)
}
