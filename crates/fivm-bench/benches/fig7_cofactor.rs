//! Criterion bench for Figure 7: cofactor-matrix maintenance on the
//! Retailer and Housing schemas — per-batch latency of F-IVM vs SQL-OPT
//! vs DBT-RING (the scalar fleets are covered by the `experiments`
//! binary; they are deliberately too slow for a tight criterion loop).

use criterion::{criterion_group, criterion_main, Criterion};
use fivm_bench::{FIvmMaintainer, Maintainer, RecursiveMaintainer};
use fivm_core::ring::cofactor::Cofactor;
use fivm_core::ring::degree::DegreeRing;
use fivm_data::{housing, retailer, HousingConfig, RetailerConfig};
use fivm_ml::CofactorSpec;
use fivm_query::ViewTree;
use std::hint::black_box;

fn retailer_bench(c: &mut Criterion) {
    let cfg = RetailerConfig {
        inventory_rows: 4_000,
        ..Default::default()
    };
    let r = retailer::generate(&cfg);
    let q = r.query.clone();
    let tree = ViewTree::build(&q, &r.order);
    let spec = CofactorSpec::over_all_vars(&q);
    let all: Vec<usize> = (0..q.relations.len()).collect();
    let batches = r.stream(1000);

    let mut group = c.benchmark_group("fig7_retailer_cofactor");
    group.sample_size(10);
    group.bench_function("F-IVM", |b| {
        b.iter(|| {
            let mut m =
                FIvmMaintainer::<Cofactor>::new(q.clone(), tree.clone(), &all, spec.liftings());
            for batch in &batches {
                m.apply_batch(batch.relation, black_box(&batch.tuples));
            }
        });
    });
    group.bench_function("SQL-OPT", |b| {
        b.iter(|| {
            let mut m = FIvmMaintainer::<DegreeRing>::new(
                q.clone(),
                tree.clone(),
                &all,
                spec.degree_liftings(),
            );
            for batch in &batches {
                m.apply_batch(batch.relation, black_box(&batch.tuples));
            }
        });
    });
    group.bench_function("DBT-RING", |b| {
        b.iter(|| {
            let mut m = RecursiveMaintainer::<Cofactor>::new(q.clone(), &all, spec.liftings());
            for batch in &batches {
                m.apply_batch(batch.relation, black_box(&batch.tuples));
            }
        });
    });
    group.finish();
}

fn housing_bench(c: &mut Criterion) {
    let h = housing::generate(&HousingConfig {
        postcodes: 200,
        scale: 1,
        ..Default::default()
    });
    let q = h.query.clone();
    let tree = ViewTree::build(&q, &h.order);
    let spec = CofactorSpec::over_all_vars(&q);
    let all: Vec<usize> = (0..q.relations.len()).collect();
    let batches = h.stream(1000);

    let mut group = c.benchmark_group("fig7_housing_cofactor");
    group.sample_size(10);
    group.bench_function("F-IVM", |b| {
        b.iter(|| {
            let mut m =
                FIvmMaintainer::<Cofactor>::new(q.clone(), tree.clone(), &all, spec.liftings());
            for batch in &batches {
                m.apply_batch(batch.relation, black_box(&batch.tuples));
            }
        });
    });
    group.bench_function("DBT-RING", |b| {
        b.iter(|| {
            let mut m = RecursiveMaintainer::<Cofactor>::new(q.clone(), &all, spec.liftings());
            for batch in &batches {
                m.apply_batch(batch.relation, black_box(&batch.tuples));
            }
        });
    });
    group.finish();
}

criterion_group!(benches, retailer_bench, housing_bench);
criterion_main!(benches);
