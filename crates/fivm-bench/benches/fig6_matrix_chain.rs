//! Criterion bench for Figure 6: matrix chain maintenance under
//! one-row (rank-1) and rank-r updates to A₂ in A = A₁A₂A₃.
//!
//! Left plot: per-update latency across strategies and dimensions —
//! F-IVM stays O(n²) while 1-IVM / RE-EVAL pay O(n³).
//! Right plot: rank-r sweep for F-IVM, linear in r.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fivm_data::matrices;
use fivm_linalg::{DenseChainIvm, FirstOrderChain, Matrix, ReEvalChain};
use std::hint::black_box;

fn dense_chain(n: usize) -> Vec<Matrix> {
    matrices::random_chain(3, n, 42)
        .iter()
        .map(|d| Matrix::from_fn(n, n, |i, j| d[i * n + j]))
        .collect()
}

fn fig6_left(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_left_row_update");
    group.sample_size(10);
    for n in [32usize, 64, 128] {
        let chain = dense_chain(n);
        let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(7);
        let (u, v) = matrices::one_row_update(n, n / 2, &mut rng);
        let mut delta = Matrix::zeros(n, n);
        delta.add_outer(&u, &v);

        group.bench_with_input(BenchmarkId::new("F-IVM", n), &n, |b, _| {
            let mut m = DenseChainIvm::new(chain.clone());
            b.iter(|| m.apply_rank1(1, black_box(&u), black_box(&v)));
        });
        group.bench_with_input(BenchmarkId::new("1-IVM", n), &n, |b, _| {
            let mut m = FirstOrderChain::new(chain.clone());
            b.iter(|| m.apply(1, black_box(&delta)));
        });
        group.bench_with_input(BenchmarkId::new("RE-EVAL", n), &n, |b, _| {
            let mut m = ReEvalChain::new(chain.clone());
            b.iter(|| m.apply(1, black_box(&delta)));
        });
    }
    group.finish();
}

fn fig6_right(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_right_rank_r");
    group.sample_size(10);
    let n = 128usize;
    let chain = dense_chain(n);
    let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(9);
    for r in [1usize, 4, 16] {
        let factors = matrices::rank_r_update(n, r, &mut rng);
        group.bench_with_input(BenchmarkId::new("F-IVM", r), &r, |b, _| {
            let mut m = DenseChainIvm::new(chain.clone());
            b.iter(|| m.apply_rank_r(1, black_box(&factors)));
        });
    }
    group.bench_function("RE-EVAL_once", |b| {
        b.iter(|| ReEvalChain::new(black_box(chain.clone())));
    });
    group.finish();
}

criterion_group!(benches, fig6_left, fig6_right);
criterion_main!(benches);
