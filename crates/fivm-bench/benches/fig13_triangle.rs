//! Criterion bench for Figure 13: cofactor maintenance over the cyclic
//! triangle query, with and without indicator projections, against
//! DBT-RING — plus the Appendix B single-relation (ONE) scenario.

use criterion::{criterion_group, criterion_main, Criterion};
use fivm_bench::{FIvmMaintainer, Maintainer, RecursiveMaintainer};
use fivm_core::ring::cofactor::Cofactor;
use fivm_core::Semiring;
use fivm_data::{twitter, TwitterConfig};
use fivm_engine::Database;
use fivm_ml::CofactorSpec;
use fivm_query::{add_indicators, ViewTree};
use std::hint::black_box;

fn triangle_bench(c: &mut Criterion) {
    let t = twitter::generate(&TwitterConfig {
        edges: 3_000,
        nodes: 1_500,
        ..Default::default()
    });
    let q = t.query.clone();
    let spec = CofactorSpec::over_all_vars(&q);
    let all = [0usize, 1, 2];
    let plain = ViewTree::build(&q, &t.order);
    let mut with_ind = plain.clone();
    add_indicators(&mut with_ind, &q);
    let batches = t.stream(1000);

    let mut group = c.benchmark_group("fig13_triangle_cofactor");
    group.sample_size(10);
    group.bench_function("F-IVM+indicator", |b| {
        b.iter(|| {
            let mut m =
                FIvmMaintainer::<Cofactor>::new(q.clone(), with_ind.clone(), &all, spec.liftings());
            for batch in &batches {
                m.apply_batch(batch.relation, black_box(&batch.tuples));
            }
        });
    });
    group.bench_function("F-IVM plain", |b| {
        b.iter(|| {
            let mut m =
                FIvmMaintainer::<Cofactor>::new(q.clone(), plain.clone(), &all, spec.liftings());
            for batch in &batches {
                m.apply_batch(batch.relation, black_box(&batch.tuples));
            }
        });
    });
    group.bench_function("DBT-RING", |b| {
        b.iter(|| {
            let mut m = RecursiveMaintainer::<Cofactor>::new(q.clone(), &all, spec.liftings());
            for batch in &batches {
                m.apply_batch(batch.relation, black_box(&batch.tuples));
            }
        });
    });

    // ONE scenario: S and T static, stream R
    let one_batches = t.stream_r_only(1000);
    let mut static_db = Database::<Cofactor>::empty(&q);
    for ri in 1..3 {
        for tu in &t.tuples[ri] {
            static_db.relations[ri].insert(tu.clone(), Cofactor::one());
        }
    }
    group.bench_function("F-IVM ONE", |b| {
        b.iter(|| {
            let mut m =
                FIvmMaintainer::<Cofactor>::new(q.clone(), with_ind.clone(), &[0], spec.liftings());
            m.engine.load(&static_db);
            for batch in &one_batches {
                m.apply_batch(batch.relation, black_box(&batch.tuples));
            }
        });
    });
    group.finish();
}

criterion_group!(benches, triangle_bench);
criterion_main!(benches);
