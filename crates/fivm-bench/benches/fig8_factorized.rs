//! Criterion bench for Figure 8: conjunctive-query maintenance with
//! factorized vs listing payloads on the Housing star join.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fivm_bench::{FIvmMaintainer, Maintainer};
use fivm_core::ring::relational::RelPayload;
use fivm_core::{Lifting, LiftingMap, Schema, Value};
use fivm_data::{housing, HousingConfig};
use fivm_engine::enumerate::{factorized_preprojection, factorized_transform};
use fivm_engine::IvmEngine;
use fivm_query::{QueryDef, ViewTree};
use std::hint::black_box;

fn cq_liftings(q: &QueryDef) -> LiftingMap<RelPayload> {
    let mut lifts = LiftingMap::new();
    for &v in q.all_vars().iter() {
        lifts.set(
            v,
            Lifting::from_fn(move |val: &Value| RelPayload::lift_free(Schema::new(vec![v]), val)),
        );
    }
    lifts
}

fn housing_scales(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_housing_join");
    group.sample_size(10);
    for scale in [1usize, 2, 4] {
        let h = housing::generate(&HousingConfig {
            postcodes: 50,
            scale,
            ..Default::default()
        });
        let q = h.query.clone();
        let tree = ViewTree::build(&q, &h.order);
        let all: Vec<usize> = (0..q.relations.len()).collect();
        let lifts = cq_liftings(&q);
        let batches = h.stream(1000);

        group.bench_with_input(BenchmarkId::new("factorized", scale), &scale, |b, _| {
            b.iter(|| {
                let engine =
                    IvmEngine::<RelPayload>::new(q.clone(), tree.clone(), &all, lifts.clone())
                        .with_payload_transform(factorized_transform(&tree))
                        .with_payload_preprojection(factorized_preprojection());
                let mut m = FIvmMaintainer::from_engine(engine);
                for batch in &batches {
                    m.apply_batch(batch.relation, black_box(&batch.tuples));
                }
            });
        });
        group.bench_with_input(BenchmarkId::new("listing", scale), &scale, |b, _| {
            b.iter(|| {
                let engine =
                    IvmEngine::<RelPayload>::new(q.clone(), tree.clone(), &all, lifts.clone());
                let mut m = FIvmMaintainer::from_engine(engine);
                for batch in &batches {
                    m.apply_batch(batch.relation, black_box(&batch.tuples));
                }
            });
        });
    }
    group.finish();
}

criterion_group!(benches, housing_scales);
criterion_main!(benches);
