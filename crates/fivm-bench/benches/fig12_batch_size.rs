//! Criterion bench for Figure 12: the effect of batch size on cofactor
//! maintenance (F-IVM on Housing).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fivm_bench::{FIvmMaintainer, Maintainer};
use fivm_core::ring::cofactor::Cofactor;
use fivm_data::{housing, HousingConfig};
use fivm_ml::CofactorSpec;
use fivm_query::ViewTree;
use std::hint::black_box;

fn batch_size_bench(c: &mut Criterion) {
    let h = housing::generate(&HousingConfig {
        postcodes: 200,
        scale: 1,
        ..Default::default()
    });
    let q = h.query.clone();
    let tree = ViewTree::build(&q, &h.order);
    let spec = CofactorSpec::over_all_vars(&q);
    let all: Vec<usize> = (0..q.relations.len()).collect();
    let total = h.total_tuples();

    let mut group = c.benchmark_group("fig12_batch_size");
    group.sample_size(10);
    group.throughput(Throughput::Elements(total as u64));
    for bs in [10usize, 100, 1_000] {
        let batches = h.stream(bs);
        group.bench_with_input(BenchmarkId::new("F-IVM", bs), &bs, |b, _| {
            b.iter(|| {
                let mut m =
                    FIvmMaintainer::<Cofactor>::new(q.clone(), tree.clone(), &all, spec.liftings());
                for batch in &batches {
                    m.apply_batch(batch.relation, black_box(&batch.tuples));
                }
            });
        });
    }
    group.finish();
}

criterion_group!(benches, batch_size_bench);
criterion_main!(benches);
