//! Criterion bench for the Figure 11 table: maintenance of a single
//! SUM aggregate on Housing across all five strategies.

use criterion::{criterion_group, criterion_main, Criterion};
use fivm_bench::{
    DbtReMaintainer, FIvmMaintainer, FReMaintainer, Maintainer, RecursiveMaintainer, ScalarFleet,
    ScalarKind,
};
use fivm_core::{Lifting, LiftingMap, Value};
use fivm_data::{housing, HousingConfig};
use fivm_query::ViewTree;
use std::hint::black_box;

fn sum_bench(c: &mut Criterion) {
    let h = housing::generate(&HousingConfig {
        postcodes: 150,
        scale: 1,
        ..Default::default()
    });
    let q = h.query.clone();
    let tree = ViewTree::build(&q, &h.order);
    let all: Vec<usize> = (0..q.relations.len()).collect();
    let mut lifts = LiftingMap::<f64>::new();
    lifts.set(
        q.catalog.lookup("postcode").unwrap(),
        Lifting::from_fn(|v: &Value| v.as_f64().unwrap()),
    );
    let batches = h.stream(500);

    let mut group = c.benchmark_group("fig11_sum_housing");
    group.sample_size(10);
    group.bench_function("F-IVM", |b| {
        b.iter(|| {
            let mut m = FIvmMaintainer::<f64>::new(q.clone(), tree.clone(), &all, lifts.clone());
            for batch in &batches {
                m.apply_batch(batch.relation, black_box(&batch.tuples));
            }
        });
    });
    group.bench_function("DBT", |b| {
        b.iter(|| {
            let mut m = RecursiveMaintainer::<f64>::new(q.clone(), &all, lifts.clone());
            for batch in &batches {
                m.apply_batch(batch.relation, black_box(&batch.tuples));
            }
        });
    });
    group.bench_function("1-IVM", |b| {
        b.iter(|| {
            let mut m = ScalarFleet::new(
                ScalarKind::FirstOrder,
                q.clone(),
                &tree,
                &all,
                vec![lifts.clone()],
            );
            for batch in &batches {
                m.apply_batch(batch.relation, black_box(&batch.tuples));
            }
        });
    });
    group.bench_function("F-RE", |b| {
        b.iter(|| {
            let mut m = FReMaintainer::new(q.clone(), tree.clone(), lifts.clone());
            for batch in &batches {
                m.apply_batch(batch.relation, black_box(&batch.tuples));
            }
        });
    });
    group.bench_function("DBT-RE", |b| {
        b.iter(|| {
            let mut m = DbtReMaintainer::new(q.clone(), lifts.clone());
            for batch in &batches {
                m.apply_batch(batch.relation, black_box(&batch.tuples));
            }
        });
    });
    group.finish();
}

criterion_group!(benches, sum_bench);
criterion_main!(benches);
