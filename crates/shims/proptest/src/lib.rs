//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this vendored shim
//! implements the subset of the proptest API the workspace's property
//! tests use: the [`Strategy`] trait with `prop_map` / `prop_flat_map` /
//! `prop_filter_map`, range and tuple strategies, [`collection::vec`],
//! [`sample::subsequence`], [`Just`], weighted/unweighted [`prop_oneof!`],
//! the `proptest!` test macro, and the `prop_assert*` family.
//!
//! Differences from real proptest: generation is plain random sampling
//! (no size ramp-up) and failing cases are **not shrunk** — the failure
//! message reports the case's seed so it can be replayed by fixing the
//! seed in [`ProptestConfig`]. Runs are deterministic per test name and
//! case index.

use rand::rngs::SmallRng;
use rand::{Rng as _, SeedableRng as _};

pub mod strategy {
    //! Strategy combinators.
    pub use crate::{BoxedStrategy, Just, Strategy};
}

/// The RNG handed to strategies.
#[derive(Clone, Debug)]
pub struct TestRng(SmallRng);

impl TestRng {
    /// Deterministic RNG for `(seed, case)`.
    pub fn for_case(seed: u64, case: u64) -> Self {
        TestRng(SmallRng::seed_from_u64(
            seed ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        ))
    }

    /// Next raw 64 bits.
    pub fn next_u64(&mut self) -> u64 {
        rand::RngCore::next_u64(&mut self.0)
    }

    /// Uniform `usize` in `[0, n)`.
    pub fn below(&mut self, n: usize) -> usize {
        self.0.gen_range(0..n.max(1))
    }
}

/// Why a test case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The case was rejected (filter/assume failed); it is retried.
    Reject(String),
    /// The property failed.
    Fail(String),
}

impl TestCaseError {
    /// A failure.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejection.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            TestCaseError::Fail(m) => write!(f, "failed: {m}"),
        }
    }
}

/// Result type of a single property-test case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
    /// Base seed; the per-case RNG derives from it.
    pub seed: u64,
    /// Give up after this many consecutive rejections.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            seed: 0x5eed_cafe_f00d_0001,
            max_global_rejects: 65_536,
        }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Default::default()
        }
    }
}

/// A generator of test values.
///
/// `gen` returns `None` when the underlying filter rejected the draw;
/// the runner then rejects the whole case and redraws.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn gen(&self, rng: &mut TestRng) -> Option<Self::Value>;

    /// Map generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from the strategy it maps to.
    fn prop_flat_map<U: Strategy, F: Fn(Self::Value) -> U>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Map-and-filter; draws returning `None` are rejected.
    fn prop_filter_map<U, F: Fn(Self::Value) -> Option<U>>(
        self,
        _reason: &'static str,
        f: F,
    ) -> FilterMap<Self, F>
    where
        Self: Sized,
    {
        FilterMap { inner: self, f }
    }

    /// Keep only values satisfying `pred`.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        _reason: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { inner: self, pred }
    }

    /// Type-erase the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn gen(&self, rng: &mut TestRng) -> Option<Self::Value> {
        (**self).gen(rng)
    }
}

/// A boxed, type-erased [`Strategy`].
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn gen(&self, rng: &mut TestRng) -> Option<T> {
        self.0.gen(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn gen(&self, _rng: &mut TestRng) -> Option<T> {
        Some(self.0.clone())
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn gen(&self, rng: &mut TestRng) -> Option<U> {
        self.inner.gen(rng).map(&self.f)
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: Strategy, F: Fn(S::Value) -> U> Strategy for FlatMap<S, F> {
    type Value = U::Value;
    fn gen(&self, rng: &mut TestRng) -> Option<U::Value> {
        let mid = self.inner.gen(rng)?;
        (self.f)(mid).gen(rng)
    }
}

/// See [`Strategy::prop_filter_map`].
pub struct FilterMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> Option<U>> Strategy for FilterMap<S, F> {
    type Value = U;
    fn gen(&self, rng: &mut TestRng) -> Option<U> {
        // A few local retries before rejecting the enclosing case.
        for _ in 0..8 {
            if let Some(v) = self.inner.gen(rng).and_then(&self.f) {
                return Some(v);
            }
        }
        None
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn gen(&self, rng: &mut TestRng) -> Option<S::Value> {
        for _ in 0..8 {
            if let Some(v) = self.inner.gen(rng) {
                if (self.pred)(&v) {
                    return Some(v);
                }
            }
        }
        None
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn gen(&self, rng: &mut TestRng) -> Option<$t> {
                Some(rng.0.gen_range(self.clone()))
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn gen(&self, rng: &mut TestRng) -> Option<$t> {
                Some(rng.0.gen_range(self.clone()))
            }
        }
    )*};
}

impl_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn gen(&self, rng: &mut TestRng) -> Option<Self::Value> {
                let ($($name,)+) = self;
                Some(($($name.gen(rng)?,)+))
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);

/// Weighted union of same-typed strategies (`prop_oneof!`).
pub struct Union<S> {
    options: Vec<(u32, S)>,
    total: u64,
}

impl<S: Strategy> Union<S> {
    /// Build from `(weight, strategy)` pairs.
    pub fn new_weighted(options: Vec<(u32, S)>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        let total = options.iter().map(|(w, _)| u64::from(*w)).sum::<u64>();
        assert!(total > 0, "prop_oneof! weights sum to zero");
        Union { options, total }
    }
}

impl<S: Strategy> Strategy for Union<S> {
    type Value = S::Value;
    fn gen(&self, rng: &mut TestRng) -> Option<S::Value> {
        let mut pick = rng.next_u64() % self.total;
        for (w, s) in &self.options {
            if pick < u64::from(*w) {
                return s.gen(rng);
            }
            pick -= u64::from(*w);
        }
        unreachable!("weights exhausted")
    }
}

/// Size specification for [`collection::vec`] and
/// [`sample::subsequence`].
#[derive(Clone, Debug)]
pub struct SizeRange {
    lo: usize,
    hi_incl: usize,
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        if self.lo >= self.hi_incl {
            self.lo
        } else {
            self.lo + rng.below(self.hi_incl - self.lo + 1)
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi_incl: n }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi_incl: r.end - 1,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi_incl: *r.end(),
        }
    }
}

pub mod collection {
    //! Collection strategies.
    use super::{SizeRange, Strategy, TestRng};

    /// Strategy for `Vec`s of `element` with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn gen(&self, rng: &mut TestRng) -> Option<Vec<S::Value>> {
            let n = self.size.sample(rng);
            let mut out = Vec::with_capacity(n);
            for _ in 0..n {
                out.push(self.element.gen(rng)?);
            }
            Some(out)
        }
    }
}

pub mod sample {
    //! Sampling from existing collections.
    use super::{SizeRange, Strategy, TestRng};

    /// Strategy for order-preserving subsequences of `values` whose
    /// length is drawn from `size`.
    pub fn subsequence<T: Clone>(
        values: Vec<T>,
        size: impl Into<SizeRange>,
    ) -> SubsequenceStrategy<T> {
        SubsequenceStrategy {
            values,
            size: size.into(),
        }
    }

    /// See [`subsequence`].
    pub struct SubsequenceStrategy<T> {
        values: Vec<T>,
        size: SizeRange,
    }

    impl<T: Clone> Strategy for SubsequenceStrategy<T> {
        type Value = Vec<T>;
        fn gen(&self, rng: &mut TestRng) -> Option<Vec<T>> {
            let n = self.size.sample(rng).min(self.values.len());
            // Floyd's algorithm for a uniform n-subset of indices, then
            // emit in original order.
            let mut picked = vec![false; self.values.len()];
            for j in (self.values.len() - n)..self.values.len() {
                let t = rng.below(j + 1);
                if picked[t] {
                    picked[j] = true;
                } else {
                    picked[t] = true;
                }
            }
            Some(
                self.values
                    .iter()
                    .zip(&picked)
                    .filter(|(_, &p)| p)
                    .map(|(v, _)| v.clone())
                    .collect(),
            )
        }
    }
}

/// Drive a property: draw cases until `config.cases` pass, panicking on
/// the first failure. Used by the `proptest!` macro.
pub fn run_property(
    name: &str,
    config: ProptestConfig,
    mut case: impl FnMut(&mut TestRng) -> TestCaseResult,
) {
    // Per-test deterministic seed, independent of case order.
    let mut seed = config.seed;
    for b in name.bytes() {
        seed = (seed ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
    }
    let mut passed = 0u32;
    let mut rejected = 0u32;
    let mut draw = 0u64;
    while passed < config.cases {
        let case_seed = draw;
        draw += 1;
        let mut rng = TestRng::for_case(seed, case_seed);
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                if rejected > config.max_global_rejects {
                    panic!(
                        "proptest '{name}': too many rejected cases \
                         ({rejected} rejects for {passed} passes)"
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "proptest '{name}' failed at case {case_seed} \
                     (seed {seed:#x}): {msg}"
                );
            }
        }
    }
}

/// Defines property tests:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(16))]
///     #[test]
///     fn my_prop(x in 0i64..10, v in proptest::collection::vec(0u32..4, 1..5)) {
///         prop_assert!(x >= 0);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $(
            $(#[$attr:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let strategies = ($($strat,)+);
                $crate::run_property(stringify!($name), config, |rng| {
                    #[allow(non_snake_case)]
                    let ($($arg,)+) = &strategies;
                    $(
                        let $arg = match $crate::Strategy::gen($arg, rng) {
                            ::core::option::Option::Some(v) => v,
                            ::core::option::Option::None => {
                                return ::core::result::Result::Err(
                                    $crate::TestCaseError::reject("strategy rejected draw"),
                                )
                            }
                        };
                    )+
                    let run = || -> $crate::TestCaseResult {
                        $body
                        #[allow(unreachable_code)]
                        ::core::result::Result::Ok(())
                    };
                    run()
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Weighted or unweighted choice among strategies generating the same
/// value type (arms are boxed, so their strategy types may differ).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new_weighted(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1 => $strat),+]
    };
}

/// Assert within a property; failure fails the case (no panic).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Equality assertion within a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)*), l, r
        );
    }};
}

/// Reject the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

pub mod prelude {
    //! The common imports, mirroring `proptest::prelude`.
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy, TestCaseError, TestCaseResult, Union,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_and_vec() {
        let s = crate::collection::vec(0i64..5, 2..=4);
        crate::run_property("ranges_and_vec", ProptestConfig::with_cases(50), |rng| {
            let v = s.gen(rng).unwrap();
            prop_assert!((2..=4).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| (0..5).contains(&x)));
            Ok(())
        });
    }

    #[test]
    fn subsequence_preserves_order() {
        let s = crate::sample::subsequence(vec![1, 2, 3, 4, 5], 2..=3);
        crate::run_property("subseq", ProptestConfig::with_cases(50), |rng| {
            let v = s.gen(rng).unwrap();
            prop_assert!(v.len() == 2 || v.len() == 3);
            prop_assert!(v.windows(2).all(|w| w[0] < w[1]));
            Ok(())
        });
    }

    #[test]
    fn oneof_weighted_hits_all() {
        let s = prop_oneof![3 => Just(1i64), 1 => Just(-1)];
        let mut seen = std::collections::HashSet::new();
        crate::run_property("oneof", ProptestConfig::with_cases(100), |rng| {
            seen.insert(s.gen(rng).unwrap());
            Ok(())
        });
        assert_eq!(seen.len(), 2);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn macro_basics(x in 0i64..10, ys in crate::collection::vec(0u32..3, 1..4)) {
            prop_assert!((0..10).contains(&x));
            prop_assert_eq!(ys.len(), ys.len());
        }
    }

    proptest! {
        #[test]
        fn macro_without_config(b in prop_oneof![4 => Just(true), 1 => Just(false)]) {
            prop_assume!(b as u8 <= 1);
            prop_assert!(b as u8 <= 1);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic() {
        crate::run_property("always_fails", ProptestConfig::with_cases(1), |_rng| {
            Err(TestCaseError::fail("nope"))
        });
    }
}
