//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so this vendored shim
//! implements the subset of the criterion API the workspace's benches
//! use: `criterion_group!` / `criterion_main!`, benchmark groups with
//! `sample_size` / `throughput` / `bench_function` / `bench_with_input`,
//! [`BenchmarkId`], and `Bencher::iter`.
//!
//! Measurement is simple wall-clock sampling (median of N samples, no
//! outlier analysis or HTML reports). `--test` runs every benchmark
//! body exactly once — that is what CI uses to keep the harness from
//! rotting — and a positional filter argument selects benchmarks by
//! substring, like real criterion.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// How a group scales measured time into throughput.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: function name plus a parameter rendering.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Identifier for `function_name` at `parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Identifier from a parameter only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

/// Accepted by `bench_function`: a string or a [`BenchmarkId`].
pub trait IntoBenchmarkId {
    /// Render to the display name.
    fn into_name(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_name(self) -> String {
        self.name
    }
}

impl IntoBenchmarkId for &str {
    fn into_name(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_name(self) -> String {
        self
    }
}

/// Passed to benchmark closures; runs and times the measured routine.
pub struct Bencher<'a> {
    samples: usize,
    test_mode: bool,
    recorded: &'a mut Vec<Duration>,
}

impl Bencher<'_> {
    /// Time `routine`, once per sample.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let n = if self.test_mode { 1 } else { self.samples };
        for _ in 0..n {
            let start = Instant::now();
            let out = routine();
            self.recorded.push(start.elapsed());
            drop(out);
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    group_name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of timing samples per benchmark (min 1 here; real
    /// criterion enforces min 10).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declare per-iteration throughput for reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = format!("{}/{}", self.group_name, id.into_name());
        if !self.criterion.matches(&name) {
            return self;
        }
        let mut recorded = Vec::new();
        {
            let mut b = Bencher {
                samples: self.sample_size,
                test_mode: self.criterion.test_mode,
                recorded: &mut recorded,
            };
            f(&mut b);
        }
        self.criterion.report(&name, &recorded, self.throughput);
        self
    }

    /// Run one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id.into_name(), |b| f(b, input))
    }

    /// End the group (no-op; kept for API compatibility).
    pub fn finish(&mut self) {}
}

/// The benchmark driver.
pub struct Criterion {
    test_mode: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut test_mode = false;
        let mut filter = None;
        // `cargo bench -- --test [filter]`; libtest also passes
        // `--bench` through, which we accept and ignore.
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => test_mode = true,
                "--bench" | "--nocapture" => {}
                s if s.starts_with("--") => {}
                s => filter = Some(s.to_string()),
            }
        }
        Criterion { test_mode, filter }
    }
}

impl Criterion {
    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            group_name: name.into(),
            sample_size: 10,
            throughput: None,
            criterion: self,
        }
    }

    /// Run a standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(name, f);
        self
    }

    fn matches(&self, name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| name.contains(f))
    }

    fn report(&self, name: &str, samples: &[Duration], throughput: Option<Throughput>) {
        if self.test_mode {
            println!("test {name} ... ok (ran once)");
            return;
        }
        if samples.is_empty() {
            return;
        }
        let mut sorted: Vec<Duration> = samples.to_vec();
        sorted.sort();
        let median = sorted[sorted.len() / 2];
        let best = sorted[0];
        match throughput {
            Some(Throughput::Elements(n)) => {
                let eps = n as f64 / median.as_secs_f64().max(1e-12);
                println!(
                    "{name}: median {} (best {}), {eps:.0} elem/s",
                    fmt_duration(median),
                    fmt_duration(best)
                );
            }
            Some(Throughput::Bytes(n)) => {
                let bps = n as f64 / median.as_secs_f64().max(1e-12);
                println!(
                    "{name}: median {} (best {}), {bps:.0} B/s",
                    fmt_duration(median),
                    fmt_duration(best)
                );
            }
            None => println!(
                "{name}: median {} (best {}, {} samples)",
                fmt_duration(median),
                fmt_duration(best),
                sorted.len()
            ),
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1.0 {
        format!("{s:.3}s")
    } else if s >= 1e-3 {
        format!("{:.3}ms", s * 1e3)
    } else {
        format!("{:.3}µs", s * 1e6)
    }
}

/// `black_box` re-export location used by some criterion versions.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Group benchmark functions under one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.throughput(Throughput::Elements(100));
        group.bench_function("plain", |b| b.iter(|| std::hint::black_box(2 + 2)));
        group.bench_with_input(BenchmarkId::new("with_input", 7), &7u64, |b, &x| {
            b.iter(|| std::hint::black_box(x * 2))
        });
        group.finish();
    }

    #[test]
    fn runs_benches() {
        let mut c = Criterion {
            test_mode: true,
            filter: None,
        };
        sample_bench(&mut c);
    }

    #[test]
    fn filter_skips() {
        let mut c = Criterion {
            test_mode: true,
            filter: Some("nomatch".into()),
        };
        // bodies that would panic are skipped by the filter
        let mut group = c.benchmark_group("g");
        group.bench_function("boom", |_b| panic!("should not run"));
    }

    #[test]
    fn ids_render() {
        assert_eq!(BenchmarkId::new("f", 32).name, "f/32");
        assert_eq!(BenchmarkId::from_parameter("x").name, "x");
    }
}
