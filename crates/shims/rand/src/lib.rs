//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no crates.io access, so this vendored shim
//! provides the (small) subset of the `rand` 0.8 API the workspace uses:
//! [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`], and the [`Rng`]
//! methods `gen_range` (half-open and inclusive integer/float ranges),
//! `gen_bool` and `gen`. The generator is xoshiro256++, seeded via
//! SplitMix64 — deterministic across runs and platforms, which is all
//! the data generators and tests rely on.

use std::ops::{Range, RangeInclusive};

/// Core source of random `u64`s.
pub trait RngCore {
    /// The next raw 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable generators (subset: seeding from a `u64`).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Named generator types.

    /// A small, fast, non-cryptographic generator (xoshiro256++).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        pub(crate) s: [u64; 4],
    }

    impl super::RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    impl super::SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as rand does for small seeds.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }
}

/// Types samplable uniformly from a range.
pub trait SampleUniform: Sized {
    /// Uniform sample from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Uniform sample from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                let v = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
            #[inline]
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl SampleUniform for f64 {
    #[inline]
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + unit * (hi - lo)
    }
    #[inline]
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
        Self::sample_half_open(lo, hi, rng)
    }
}

impl SampleUniform for f32 {
    #[inline]
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
        f64::sample_half_open(lo as f64, hi as f64, rng) as f32
    }
    #[inline]
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
        Self::sample_half_open(lo, hi, rng)
    }
}

/// Range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one uniform sample.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for RangeInclusive<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

/// Types with a "standard" distribution for [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one sample.
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    #[inline]
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    #[inline]
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    #[inline]
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::standard(self) < p
    }

    /// A sample of the standard distribution of `T`.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::standard(self)
    }
}

impl<R: RngCore> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = rngs::SmallRng::seed_from_u64(7);
        let mut b = rngs::SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = rngs::SmallRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = rngs::SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range(-5i64..5);
            assert!((-5..5).contains(&v));
            let u = r.gen_range(0usize..3);
            assert!(u < 3);
            let f = r.gen_range(-1.0..1.0f64);
            assert!((-1.0..1.0).contains(&f));
            let i = r.gen_range(2usize..=3);
            assert!(i == 2 || i == 3);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = rngs::SmallRng::seed_from_u64(2);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }

    #[test]
    fn covers_full_range() {
        let mut r = rngs::SmallRng::seed_from_u64(3);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[r.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
