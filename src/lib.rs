//! # F-IVM — factorized higher-order incremental view maintenance
//!
//! A from-scratch Rust implementation of *“Incremental View Maintenance
//! with Triple Lock Factorization Benefits”* (Nikolic & Olteanu,
//! SIGMOD 2018).
//!
//! F-IVM maintains queries with joins and group-by aggregates whose
//! aggregate values live in a task-specific **ring**: the same view-tree
//! machinery serves SQL aggregates, gradient computation for linear
//! regression over joins, matrix chain multiplication, and factorized
//! evaluation of conjunctive queries — only the ring and the lifting
//! functions change. Factorization is exploited three ways (“triple
//! lock”): factorized view computation over variable orders, factorizable
//! low-rank updates, and factorized result representations in payloads.
//!
//! ## Crate map
//!
//! * [`core`](fivm_core) — values, tuples, schemas, rings, relations
//!   over rings, lifting functions, deltas.
//! * [`query`](fivm_query) — variable orders, view trees, delta trees,
//!   materialization choice, GYO reduction, indicator projections.
//! * [`engine`](fivm_engine) — the IVM executor and the baselines
//!   (1-IVM, DBToaster-style recursive IVM, re-evaluation), factorized
//!   payloads and enumeration, memory accounting.
//! * [`durability`](fivm_durability) — segmented write-ahead delta log,
//!   incremental checkpoints, and crash recovery for the engine.
//! * [`linalg`](fivm_linalg) — dense matrices and LINVIEW-style matrix
//!   chain maintenance.
//! * [`ml`](fivm_ml) — cofactor-matrix queries and linear-regression
//!   training over maintained statistics.
//! * [`data`](fivm_data) — the Retailer / Housing / Twitter / matrix
//!   workload generators and stream synthesis.
//!
//! ## Quickstart
//!
//! ```rust
//! use fivm::prelude::*;
//!
//! // SELECT SUM(1) FROM R NATURAL JOIN S NATURAL JOIN T  (Example 2.2)
//! let q = QueryDef::example_rst(&[]);
//! let vo = VariableOrder::parse("A - { B, C - { D, E } }", &q.catalog);
//! let tree = ViewTree::build(&q, &vo);
//! let mut engine: IvmEngine<i64> =
//!     IvmEngine::new(q.clone(), tree, &[0, 1, 2], LiftingMap::new());
//!
//! let d = Relation::from_pairs(q.relations[0].schema.clone(),
//!                              [(fivm::tuple![1, 2], 1i64)]);
//! engine.apply(0, &Delta::Flat(d));
//! assert!(engine.result().is_empty()); // S and T still empty — no join
//! ```

pub use fivm_core as core;
pub use fivm_core::tuple;
pub use fivm_data as data;
pub use fivm_durability as durability;
pub use fivm_engine as engine;
pub use fivm_linalg as linalg;
pub use fivm_ml as ml;
pub use fivm_query as query;

/// Common imports for examples and tests.
pub mod prelude {
    pub use fivm_core::ring::boolean::{Bool, MaxProduct};
    pub use fivm_core::ring::cofactor::{Cofactor, DenseCofactor};
    pub use fivm_core::ring::degree::DegreeRing;
    pub use fivm_core::ring::relational::RelPayload;
    pub use fivm_core::{
        Catalog, Codec, CodecError, Delta, FxHashMap, FxHashSet, Lifting, LiftingMap, Relation,
        Ring, Schema, Semiring, Tuple, Value, VarId,
    };
    pub use fivm_durability::{
        DurabilityConfig, DurableEngine, EngineMode, FaultKind, FaultVfs, HealReport,
        RecoveryReport, StdVfs, SyncPolicy, Vfs,
    };
    pub use fivm_engine::{
        eval_tree, Database, EngineSnapshot, FactorizedResult, FirstOrderIvm, HlConfig, HlStats,
        IvmEngine, RecursiveIvm, ServingEngine, ServingStats, SnapshotReader, SubMessage,
        Subscriber, TriangleHlEngine, ViewDelta, ViewStore,
    };
    pub use fivm_ml::{train, CofactorSpec, TrainConfig, TrainedModel};
    pub use fivm_query::{
        add_indicators, delta_path, materialization, MaterializationPlan, NodeId, NodeKind,
        PartitionError, QueryDef, RelDef, RelIndex, TrianglePlan, VariableOrder, ViewNode,
        ViewTree,
    };
}
