//! Cyclic queries and indicator projections (paper Appendix B):
//! correctness under random update sequences for the triangle query and
//! the loop-4-with-chord query, with and without indicator projections,
//! plus the space bound the indicator provides.

use fivm::prelude::*;
use proptest::prelude::*;

fn run_cyclic(
    q: &QueryDef,
    vo: &VariableOrder,
    updates: &[(usize, Vec<i64>, i64)],
    with_indicators: bool,
) -> Result<(), TestCaseError> {
    let mut tree = ViewTree::build(q, vo);
    if with_indicators {
        add_indicators(&mut tree, q);
    }
    let all: Vec<usize> = (0..q.relations.len()).collect();
    let lifts = LiftingMap::<i64>::new();
    let mut engine: IvmEngine<i64> = IvmEngine::new(q.clone(), tree.clone(), &all, lifts.clone());
    let mut db = Database::empty(q);
    for (rel, vals, mult) in updates {
        let t = Tuple::new(vals.iter().map(|&v| Value::Int(v)).collect());
        let d = Relation::from_pairs(q.relations[*rel].schema.clone(), [(t, *mult)]);
        engine.apply(*rel, &Delta::Flat(d.clone()));
        db.relations[*rel].union_in_place(&d);
        let oracle = eval_tree(&tree, &db, &lifts);
        prop_assert_eq!(
            engine.result().payload(&Tuple::unit()),
            oracle.payload(&Tuple::unit()),
            "diverged (indicators={})",
            with_indicators
        );
    }
    Ok(())
}

fn upd(n_rels: usize) -> impl Strategy<Value = (usize, Vec<i64>, i64)> {
    (
        0..n_rels,
        proptest::collection::vec(0i64..3, 2),
        prop_oneof![Just(1i64), Just(1), Just(-1)],
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    #[test]
    fn triangle_with_and_without_indicators(
        updates in proptest::collection::vec(upd(3), 1..30)
    ) {
        let q = QueryDef::triangle();
        let vo = VariableOrder::parse("A - B - C", &q.catalog);
        run_cyclic(&q, &vo, &updates, false)?;
        run_cyclic(&q, &vo, &updates, true)?;
    }

    #[test]
    fn loop4_with_chord(
        updates in proptest::collection::vec(upd(5), 1..25)
    ) {
        let q = QueryDef::new(
            &[
                ("R", &["A", "B"]),
                ("S", &["B", "C"]),
                ("T", &["C", "D"]),
                ("U", &["D", "A"]),
                ("Chord", &["A", "C"]),
            ],
            &[],
        );
        let vo = VariableOrder::parse("A - B - C - D", &q.catalog);
        run_cyclic(&q, &vo, &updates, false)?;
        run_cyclic(&q, &vo, &updates, true)?;
    }
}

/// Example B.1/B.3: on a bipartite-ish instance where S ⋈ T explodes,
/// the indicator projection bounds the ST view by |R|’s active domain.
#[test]
fn indicator_bounds_view_size() {
    let q = QueryDef::triangle();
    let vo = VariableOrder::parse("A - B - C", &q.catalog);
    let plain = ViewTree::build(&q, &vo);
    let mut ind = plain.clone();
    add_indicators(&mut ind, &q);

    let all = [0usize, 1, 2];
    let lifts = LiftingMap::<i64>::new();
    let mut plain_engine: IvmEngine<i64> =
        IvmEngine::new(q.clone(), plain.clone(), &all, lifts.clone());
    let mut ind_engine: IvmEngine<i64> = IvmEngine::new(q.clone(), ind.clone(), &all, lifts);

    // n S-edges into a hub, n T-edges out of it → S⋈T has n² pairs, but
    // R touches only one (a, b) pair.
    let n = 40i64;
    let apply = |e: &mut IvmEngine<i64>, rel: usize, vals: Vec<Value>| {
        let d = Relation::from_pairs(q.relations[rel].schema.clone(), [(Tuple::new(vals), 1i64)]);
        e.apply(rel, &Delta::Flat(d));
    };
    for b in 0..n {
        for e in [&mut plain_engine, &mut ind_engine] {
            apply(e, 1, vec![Value::Int(b), Value::Int(0)]); // S(b, c=0)
        }
    }
    for a in 0..n {
        for e in [&mut plain_engine, &mut ind_engine] {
            apply(e, 2, vec![Value::Int(0), Value::Int(a)]); // T(c=0, a)
        }
    }
    for e in [&mut plain_engine, &mut ind_engine] {
        apply(e, 0, vec![Value::Int(1), Value::Int(1)]); // R(1,1)
    }
    assert_eq!(
        plain_engine.result().payload(&Tuple::unit()),
        ind_engine.result().payload(&Tuple::unit())
    );
    // The ST view over [A, B]: n² entries without the indicator, ≤ |R|
    // with it.
    let st_view = |t: &ViewTree| {
        t.nodes
            .iter()
            .position(|nd| nd.rels == 0b110 && matches!(nd.kind, NodeKind::Inner { .. }))
            .unwrap()
    };
    let plain_size = plain_engine.view_relation(st_view(&plain)).unwrap().len();
    let ind_size = ind_engine.view_relation(st_view(&ind)).unwrap().len();
    assert_eq!(plain_size, (n * n) as usize, "unbounded view is quadratic");
    assert_eq!(ind_size, 1, "indicator bounds the view by R’s support");
}

/// Migration storm for the heavy/light partitioned triangle engine:
/// a handful of keys oscillate around the partition threshold (hub
/// build-ups interleaved with targeted deletions), forcing repeated
/// promotions and demotions while background edges keep every part
/// combination populated. After every single-tuple update the
/// partitioned result must be byte-identical to the classical
/// indicator-projected engine at 1 and 4 workers and to the
/// `eval_tree` oracle.
#[test]
fn heavy_light_migration_storm_matches_classical() {
    let q = QueryDef::triangle();
    let vo = VariableOrder::parse("A - B - C", &q.catalog);
    let mut tree = ViewTree::build(&q, &vo);
    add_indicators(&mut tree, &q);
    let all = [0usize, 1, 2];
    let lifts = LiftingMap::<i64>::new();
    let mut classical = [1usize, 4].map(|w| {
        let mut e: IvmEngine<i64> = IvmEngine::new(q.clone(), tree.clone(), &all, lifts.clone());
        e.set_workers(w);
        e.set_parallel_threshold(1);
        e
    });
    // ε = 0 pins θ to min_theta: promotion at degree > 6, demotion
    // below 3 — cheap to oscillate across, expensive to get wrong.
    let mut hl = TriangleHlEngine::<i64>::new(
        q.clone(),
        HlConfig {
            epsilon: 0.0,
            min_theta: 3,
        },
    )
    .unwrap();
    let mut db = Database::empty(&q);

    let mut step = 0usize;
    let mut apply = |hl: &mut TriangleHlEngine<i64>,
                     classical: &mut [IvmEngine<i64>; 2],
                     db: &mut Database<i64>,
                     rel: usize,
                     a: i64,
                     b: i64,
                     m: i64| {
        let t = Tuple::new(vec![Value::Int(a), Value::Int(b)]);
        hl.apply_update(rel, &t, m);
        let d = Relation::from_pairs(q.relations[rel].schema.clone(), [(t, m)]);
        for e in classical.iter_mut() {
            e.apply(rel, &Delta::Flat(d.clone()));
        }
        db.relations[rel].union_in_place(&d);
        step += 1;
        let got = hl.result();
        for (w, e) in classical.iter().enumerate() {
            assert_eq!(got, e.result(), "vs workers variant {w} at step {step}");
        }
        let oracle = eval_tree(&tree, db, &lifts);
        assert_eq!(
            got.payload(&Tuple::unit()),
            oracle.payload(&Tuple::unit()),
            "vs oracle at step {step}"
        );
    };

    // Background edges: a small dense mesh so the hub updates close
    // real triangles (R(hub, j) ⋈ S(j, c) ⋈ T(c, hub) for j < 5).
    for i in 0..5i64 {
        for j in 0..5i64 {
            apply(&mut hl, &mut classical, &mut db, 1, i, j, 1); // S(i, j)
            apply(&mut hl, &mut classical, &mut db, 2, j, i, 1); // T(j, i)
        }
    }
    // Storm: three R-hub keys ramp past the promotion bound (8 distinct
    // neighbours > 2θ = 6), with tear-downs of the previous hub
    // interleaved into the build-up of the next, then a full drain back
    // below the demotion bound — repeated for three rounds.
    let mut mult = [[0i64; 8]; 3];
    for round in 0..3 {
        for hub in 0..3usize {
            for j in 0..8i64 {
                apply(&mut hl, &mut classical, &mut db, 0, hub as i64, j, 1);
                mult[hub][j as usize] += 1;
                let prev = (hub + 2) % 3;
                if mult[prev][j as usize] > 0 {
                    apply(&mut hl, &mut classical, &mut db, 0, prev as i64, j, -1);
                    mult[prev][j as usize] -= 1;
                }
            }
            assert!(
                hl.is_heavy(0, &Value::Int(hub as i64)),
                "hub {hub} not heavy in round {round}"
            );
        }
        // Finish draining every hub back to light.
        for (hub, row) in mult.iter_mut().enumerate() {
            for (j, m) in row.iter_mut().enumerate() {
                while *m > 0 {
                    apply(
                        &mut hl,
                        &mut classical,
                        &mut db,
                        0,
                        hub as i64,
                        j as i64,
                        -1,
                    );
                    *m -= 1;
                }
            }
            assert!(!hl.is_heavy(0, &Value::Int(hub as i64)));
            assert_eq!(hl.degree(0, &Value::Int(hub as i64)), 0);
        }
        hl.verify_consistency().unwrap();
    }
    let stats = hl.stats();
    assert!(
        stats.promotions >= 9 && stats.demotions >= 9,
        "storm too calm: {stats:?}"
    );
    assert!(stats.tuples_migrated > 0);
}

/// Indicator deltas propagate on both growth and shrinkage of the
/// active domain (Example B.2’s count maintenance).
#[test]
fn indicator_support_shrinks_and_grows() {
    let q = QueryDef::triangle();
    let vo = VariableOrder::parse("A - B - C", &q.catalog);
    let mut tree = ViewTree::build(&q, &vo);
    add_indicators(&mut tree, &q);
    let all = [0usize, 1, 2];
    let lifts = LiftingMap::<i64>::new();
    let mut engine: IvmEngine<i64> = IvmEngine::new(q.clone(), tree.clone(), &all, lifts.clone());
    let mut db = Database::empty(&q);
    // build a triangle, then remove R tuples one multiplicity at a time
    let steps: Vec<(usize, Vec<i64>, i64)> = vec![
        (0, vec![1, 1], 1),
        (0, vec![1, 1], 1), // multiplicity 2: support unchanged on first delete
        (1, vec![1, 1], 1),
        (2, vec![1, 1], 1),
        (0, vec![1, 1], -1), // support still present
        (0, vec![1, 1], -1), // support disappears → indicator delta
        (0, vec![1, 1], 1),  // and reappears
    ];
    for (rel, vals, mult) in steps {
        let t = Tuple::new(vals.iter().map(|&v| Value::Int(v)).collect());
        let d = Relation::from_pairs(q.relations[rel].schema.clone(), [(t, mult)]);
        engine.apply(rel, &Delta::Flat(d.clone()));
        db.relations[rel].union_in_place(&d);
        let oracle = eval_tree(&tree, &db, &lifts);
        assert_eq!(
            engine.result().payload(&Tuple::unit()),
            oracle.payload(&Tuple::unit())
        );
    }
    assert_eq!(engine.result().payload(&Tuple::unit()), 1);
}
