//! Figure 6 oracle: the relational engine's compiled factored path,
//! driven through [`fivm_linalg::EngineChainIvm`], must maintain the
//! matrix-chain product `A₁ ⋯ A_k` in agreement with two independent
//! oracles — dense re-evaluation ([`ReEvalChain`], ground truth
//! recomputed from scratch) and the dense LINVIEW-style F-IVM
//! ([`DenseChainIvm`]) — and with the engine's own general factor path,
//! under randomized rank-1 / rank-r update schedules across chain
//! lengths, positions and signs (deletes are negative-coefficient
//! rank-1 updates). Floating-point sums fold in different orders per
//! strategy, so agreement is asserted to 1e-6 relative tolerance.

use fivm_linalg::{DenseChainIvm, EngineChainIvm, Matrix, ReEvalChain};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn random_chain(k: usize, n: usize, rng: &mut SmallRng) -> Vec<Matrix> {
    (0..k)
        .map(|_| Matrix::from_fn(n, n, |_, _| rng.gen_range(-1.0..1.0)))
        .collect()
}

fn random_vec(n: usize, rng: &mut SmallRng) -> Vec<f64> {
    (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect()
}

/// A sparse ±e_row vector (the one-row-update / delete shape).
fn sparse_vec(n: usize, rng: &mut SmallRng) -> Vec<f64> {
    let mut v = vec![0.0; n];
    v[rng.gen_range(0..n)] = if rng.gen_range(0..2) == 0 { 1.0 } else { -1.0 };
    v
}

fn assert_close(a: &Matrix, b: &Matrix, context: &str) {
    let scale = a.max_abs().max(1.0);
    assert!(
        a.max_abs_diff(b) <= 1e-6 * scale,
        "{context}: max |diff| {} exceeds tolerance (scale {scale})",
        a.max_abs_diff(b)
    );
}

/// One randomized schedule: `updates` rank-1/rank-r updates to random
/// chain positions, checked against both oracles and the general path
/// after every update.
fn run_schedule(k: usize, n: usize, updates: usize, seed: u64) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let chain = random_chain(k, n, &mut rng);
    let mut reeval = ReEvalChain::new(chain.clone());
    let mut dense = DenseChainIvm::new(chain.clone());
    let mut engine = EngineChainIvm::new(chain.clone());
    let mut general = EngineChainIvm::new(chain);
    general.set_fast_path(false);

    for step in 0..updates {
        let pos = rng.gen_range(0..k);
        let r = rng.gen_range(1..=3);
        let factors: Vec<(Vec<f64>, Vec<f64>)> = (0..r)
            .map(|_| {
                let u = if rng.gen_range(0..2) == 0 {
                    sparse_vec(n, &mut rng)
                } else {
                    random_vec(n, &mut rng)
                };
                (u, random_vec(n, &mut rng))
            })
            .collect();
        let mut flat = Matrix::zeros(n, n);
        for (u, v) in &factors {
            flat.add_outer(u, v);
        }
        reeval.apply(pos, &flat);
        dense.apply_rank_r(pos, &factors);
        engine.apply_rank_r(pos, &factors);
        general.apply_rank_r(pos, &factors);

        let truth = reeval.product();
        let ctx = format!("k={k} n={n} seed={seed} step={step} pos={pos} rank={r}");
        assert_close(truth, dense.product(), &format!("{ctx} [dense F-IVM]"));
        assert_close(
            truth,
            &engine.product(),
            &format!("{ctx} [engine factored]"),
        );
        assert_close(
            truth,
            &general.product(),
            &format!("{ctx} [engine general]"),
        );
    }
}

/// Chain lengths 2–5 (balanced product trees of different depths),
/// small dimension, several seeds each.
#[test]
fn randomized_rank_schedules_match_oracles() {
    for k in 2..=5usize {
        for seed in 0..3u64 {
            run_schedule(k, 7, 6, seed * 6151 + k as u64);
        }
    }
}

/// A larger dimension crossing the accumulator's hash-merge regime
/// (n² products per step ≫ 1024).
#[test]
fn hash_regime_dimension_matches_oracles() {
    run_schedule(3, 40, 4, 0xF166);
}

/// An update stream that cancels itself must return the product to
/// its initial state (deletes really delete).
#[test]
fn cancelling_updates_return_to_start() {
    let mut rng = SmallRng::seed_from_u64(99);
    let chain = random_chain(3, 9, &mut rng);
    let re = ReEvalChain::new(chain.clone());
    let mut engine = EngineChainIvm::new(chain);
    let before = re.product().clone();
    let u = random_vec(9, &mut rng);
    let v = random_vec(9, &mut rng);
    let neg_u: Vec<f64> = u.iter().map(|x| -x).collect();
    for _ in 0..3 {
        engine.apply_rank1(1, &u, &v);
        engine.apply_rank1(1, &neg_u, &v);
    }
    assert_close(&before, &engine.product(), "cancelling stream");
}

/// The flat foil agrees too (rank-1 multiplied out through the flat
/// fast path) — slower, same answer.
#[test]
fn flat_foil_agrees_with_factored() {
    let mut rng = SmallRng::seed_from_u64(1234);
    let chain = random_chain(3, 8, &mut rng);
    let mut fact = EngineChainIvm::new(chain.clone());
    let mut flat = EngineChainIvm::new(chain);
    for _ in 0..4 {
        let u = random_vec(8, &mut rng);
        let v = random_vec(8, &mut rng);
        fact.apply_rank1(1, &u, &v);
        flat.apply_rank1_flat(1, &u, &v);
        assert_close(&fact.product(), &flat.product(), "factored vs flat foil");
    }
}
