//! Factored-delta equivalence: a factored update applied through the
//! **compiled factored path** must equal (a) its multiplied-out flat
//! form through the compiled flat path, (b) the same factored delta
//! through the general factor-propagation path
//! ([`IvmEngine::set_fast_path`]`(false)`), and (c) the flat form
//! through the parallel fan-out — on **every materialized view**, after
//! every update of randomized rank-1/rank-r schedules with mixed signs
//! (deletes), random factor groupings/orders, and symbol-keyed
//! variables. Exact `i64` ring, so agreement is bitwise.

use fivm::prelude::*;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn star_setup() -> (QueryDef, ViewTree, LiftingMap<i64>) {
    let q = QueryDef::example_rst(&["A"]);
    let vo = VariableOrder::parse("A - { B, C - { D, E } }", &q.catalog);
    let tree = ViewTree::build(&q, &vo);
    let mut lifts = LiftingMap::new();
    lifts.set(
        q.catalog.lookup("B").unwrap(),
        fivm::core::lifting::int_identity(),
    );
    (q, tree, lifts)
}

fn triangle_setup() -> (QueryDef, ViewTree, LiftingMap<i64>) {
    let q = QueryDef::triangle();
    let vo = VariableOrder::parse("A - B - C", &q.catalog);
    let mut tree = ViewTree::build(&q, &vo);
    add_indicators(&mut tree, &q);
    (q, tree, LiftingMap::new())
}

/// A random factored delta for `rel`: the relation's variables are
/// randomly partitioned into factor groups (random group count, random
/// assignment, random variable order inside each group), and each
/// factor gets 1–4 tuples over a small shared domain with mixed-sign
/// payloads. Variables in `sym_vars` draw interned strings.
fn random_factored(q: &QueryDef, rel: usize, rng: &mut SmallRng, sym_vars: &[VarId]) -> Delta<i64> {
    let vars: Vec<VarId> = q.relations[rel].schema.iter().copied().collect();
    // Random ordered partition: assign each variable to one of
    // `groups` buckets, drop empty buckets, shuffle within buckets by
    // insertion order of a random permutation.
    let domain: Vec<Value> = (0..16)
        .map(|c| q.catalog.sym(&format!("f{c:02}")))
        .collect();
    loop {
        let groups = rng.gen_range(1..=vars.len());
        let mut buckets: Vec<Vec<VarId>> = vec![Vec::new(); groups];
        let mut order: Vec<VarId> = vars.clone();
        // Fisher–Yates so factor-internal column order varies too.
        for i in (1..order.len()).rev() {
            order.swap(i, rng.gen_range(0..=i));
        }
        for &v in &order {
            buckets[rng.gen_range(0..groups)].push(v);
        }
        buckets.retain(|b| !b.is_empty());
        if buckets.is_empty() {
            continue;
        }
        let factors: Vec<Relation<i64>> = buckets
            .iter()
            .map(|b| {
                let schema = Schema::new(b.clone());
                let n = rng.gen_range(1..=4);
                let pairs: Vec<(Tuple, i64)> = (0..n)
                    .map(|_| {
                        let vals: Vec<Value> = b
                            .iter()
                            .map(|v| {
                                let code = rng.gen_range(0..16);
                                if sym_vars.contains(v) {
                                    domain[code as usize].clone()
                                } else {
                                    Value::Int(code)
                                }
                            })
                            .collect();
                        let m = *[1i64, 1, 2, -1].get(rng.gen_range(0..4)).unwrap();
                        (Tuple::new(vals), m)
                    })
                    .collect();
                Relation::from_pairs(schema, pairs)
            })
            .collect();
        return Delta::factored(factors);
    }
}

/// Resident working set so sibling joins have partners.
fn warm(q: &QueryDef, engines: &mut [IvmEngine<i64>], sym_vars: &[VarId], seed: u64) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let domain: Vec<Value> = (0..16)
        .map(|c| q.catalog.sym(&format!("f{c:02}")))
        .collect();
    for rel in 0..q.relations.len() {
        let schema: Vec<VarId> = q.relations[rel].schema.iter().copied().collect();
        let pairs: Vec<(Tuple, i64)> = (0..48)
            .map(|_| {
                let vals: Vec<Value> = schema
                    .iter()
                    .map(|v| {
                        let code = rng.gen_range(0..16);
                        if sym_vars.contains(v) {
                            domain[code as usize].clone()
                        } else {
                            Value::Int(code)
                        }
                    })
                    .collect();
                (Tuple::new(vals), 1i64 + (rng.gen_range(0..2)))
            })
            .collect();
        let d = Relation::from_pairs(q.relations[rel].schema.clone(), pairs);
        for e in engines.iter_mut() {
            e.apply(rel, &Delta::Flat(d.clone()));
        }
    }
}

fn assert_all_views_agree(engines: &[IvmEngine<i64>], context: &str) -> Result<(), TestCaseError> {
    let reference = &engines[0];
    let nodes = reference.tree().nodes.len();
    for (i, e) in engines.iter().enumerate().skip(1) {
        for node in 0..nodes {
            prop_assert_eq!(
                &reference.view_relation(node),
                &e.view_relation(node),
                "{}: engine {} diverged from engine 0 at node {}",
                context,
                i,
                node
            );
        }
    }
    Ok(())
}

/// Run a randomized rank-1/rank-r schedule through four engines —
/// factored-compiled, flat-compiled, factored-general, flat-parallel —
/// asserting full-state agreement after every update.
fn check_schedule(
    q: &QueryDef,
    tree: &ViewTree,
    lifts: &LiftingMap<i64>,
    sym_vars: &[VarId],
    seed: u64,
    updates: usize,
) -> Result<(), TestCaseError> {
    let all: Vec<usize> = (0..q.relations.len()).collect();
    let mut engines: Vec<IvmEngine<i64>> = (0..4)
        .map(|_| IvmEngine::new(q.clone(), tree.clone(), &all, lifts.clone()))
        .collect();
    engines[2].set_fast_path(false);
    engines[3].set_workers(4);
    engines[3].set_parallel_threshold(16);
    warm(q, &mut engines, sym_vars, seed ^ 0xBA5E);
    let mut rng = SmallRng::seed_from_u64(seed);
    for step in 0..updates {
        let rel = rng.gen_range(0..q.relations.len());
        // rank-r: a burst of 1–3 factored deltas to the same relation
        let r = rng.gen_range(1..=3);
        for _ in 0..r {
            let d = random_factored(q, rel, &mut rng, sym_vars);
            let flat = Delta::Flat(d.flatten().reorder(&q.relations[rel].schema));
            engines[0].apply(rel, &d);
            engines[1].apply(rel, &flat);
            engines[2].apply(rel, &d);
            engines[3].apply(rel, &flat);
        }
        assert_all_views_agree(&engines, &format!("seed={seed} step={step} rel={rel}"))?;
    }
    Ok(())
}

/// Deterministic schedules over the star query (group-by + SUM lifting
/// on B), integer keys.
#[test]
fn star_factored_schedules_are_equivalent() {
    let (q, tree, lifts) = star_setup();
    for seed in 0..6u64 {
        check_schedule(&q, &tree, &lifts, &[], seed * 7919 + 1, 8)
            .unwrap_or_else(|e| panic!("{e}"));
    }
}

/// Triangle with indicator projections: the factored path's leaf-store
/// flatten must feed support transitions identically.
#[test]
fn triangle_factored_schedules_are_equivalent() {
    let (q, tree, lifts) = triangle_setup();
    for seed in 0..6u64 {
        check_schedule(&q, &tree, &lifts, &[], seed * 104729 + 3, 8)
            .unwrap_or_else(|e| panic!("{e}"));
    }
}

/// Symbol-keyed variables: join keys are interned strings.
#[test]
fn symbol_keyed_factored_schedules_are_equivalent() {
    let (q, tree, lifts) = star_setup();
    let sym_vars: Vec<VarId> = ["A", "C"]
        .iter()
        .map(|n| q.catalog.lookup(n).unwrap())
        .collect();
    for seed in 0..4u64 {
        check_schedule(&q, &tree, &lifts, &sym_vars, seed * 31 + 11, 8)
            .unwrap_or_else(|e| panic!("{e}"));
    }
}

/// A same-shape stream must compile exactly one plan per shape seen
/// (no cache growth, no recompilation in the steady state).
#[test]
fn plan_cache_does_not_grow_on_repeated_shapes() {
    let (q, tree, lifts) = star_setup();
    let all: Vec<usize> = (0..q.relations.len()).collect();
    let engine = IvmEngine::new(q.clone(), tree, &all, lifts);
    let mut rng = SmallRng::seed_from_u64(42);
    let mut engines = [engine];
    warm(&q, &mut engines, &[], 7);
    let [mut engine] = engines;
    let before = engine.factored_shapes_cached(1);
    // The precompiled rank-1 shape: one unary factor per variable of
    // S(A, C, E), fixed order — never grows the cache.
    let (a, c, e) = (
        q.catalog.lookup("A").unwrap(),
        q.catalog.lookup("C").unwrap(),
        q.catalog.lookup("E").unwrap(),
    );
    for _ in 0..32 {
        let d = Delta::factored(vec![
            Relation::from_pairs(
                Schema::new(vec![a]),
                [(Tuple::single(Value::Int(rng.gen_range(0..16))), 1i64)],
            ),
            Relation::from_pairs(
                Schema::new(vec![c]),
                [(Tuple::single(Value::Int(rng.gen_range(0..16))), 1i64)],
            ),
            Relation::from_pairs(
                Schema::new(vec![e]),
                [(Tuple::single(Value::Int(rng.gen_range(0..16))), -1i64)],
            ),
        ]);
        engine.apply(1, &d);
    }
    assert_eq!(engine.factored_shapes_cached(1), before);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random seeds over the star query.
    #[test]
    fn random_star_schedules(seed in 0u64..u64::MAX) {
        let (q, tree, lifts) = star_setup();
        check_schedule(&q, &tree, &lifts, &[], seed, 6)?;
    }

    /// Random seeds over the triangle with indicators.
    #[test]
    fn random_triangle_schedules(seed in 0u64..u64::MAX) {
        let (q, tree, lifts) = triangle_setup();
        check_schedule(&q, &tree, &lifts, &[], seed, 6)?;
    }
}
