//! Shared differential-oracle support for integration tests: a
//! from-scratch reference evaluator plus randomized batch-schedule
//! generation. Included via `#[path = "support/oracle.rs"]` by
//! `oracle_differential.rs` (the original home of this code) and
//! `parallel_determinism.rs` — each test binary compiles its own copy,
//! so nothing here depends on test-specific state.
//!
//! The oracle stores each relation as a plain `HashMap<Vec<i64>, i64>`
//! multiset and evaluates the query by a hand-rolled hash join over
//! variable assignments (index the next relation on the already-bound
//! variables, extend, multiply multiplicities), then groups by the
//! free variables, multiplying in `g(x) = x` lifted values for the
//! designated bound variables. No `Relation`, no `TupleMap`, no view
//! trees — if the engine and the oracle agree across randomized
//! schedules, they agree for independent reasons.

// Each including test binary uses a subset of these helpers.
#![allow(dead_code)]

use fivm::prelude::*;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, HashMap};

/// Oracle-side database: per relation, row → signed multiplicity.
pub type OracleDb = Vec<HashMap<Vec<i64>, i64>>;

/// Recompute the query result from scratch: hash join all relations,
/// multiply `g(x) = x` for `identity_lift_vars`, group by `q.free`.
pub fn oracle_eval(
    q: &QueryDef,
    db: &OracleDb,
    identity_lift_vars: &[VarId],
) -> BTreeMap<Vec<i64>, i64> {
    // A partial assignment: var id → value, plus the accumulated weight.
    let n_vars = q
        .relations
        .iter()
        .flat_map(|r| r.schema.iter())
        .map(|&v| v as usize + 1)
        .max()
        .unwrap_or(0);
    let mut partials: Vec<(Vec<Option<i64>>, i64)> = vec![(vec![None; n_vars], 1)];

    for (ri, rel) in q.relations.iter().enumerate() {
        let schema: Vec<VarId> = rel.schema.iter().copied().collect();
        let bound: Vec<usize> = schema
            .iter()
            .enumerate()
            .filter(|(_, v)| partials.first().is_some_and(|(a, _)| a[**v as usize].is_some()))
            .map(|(i, _)| i)
            .collect();
        // `bound` must be identical across partials: every partial has
        // exactly the variables of the previously joined relations.
        let mut index: HashMap<Vec<i64>, Vec<(&Vec<i64>, i64)>> = HashMap::new();
        for (row, &m) in &db[ri] {
            if m == 0 {
                continue;
            }
            index
                .entry(bound.iter().map(|&i| row[i]).collect())
                .or_default()
                .push((row, m));
        }
        let mut next: Vec<(Vec<Option<i64>>, i64)> = Vec::new();
        for (assign, w) in &partials {
            let probe: Vec<i64> = bound
                .iter()
                .map(|&i| assign[schema[i] as usize].expect("bound var"))
                .collect();
            if let Some(rows) = index.get(&probe) {
                for (row, m) in rows {
                    let mut a = assign.clone();
                    let mut consistent = true;
                    for (i, &v) in schema.iter().enumerate() {
                        match a[v as usize] {
                            None => a[v as usize] = Some(row[i]),
                            Some(x) => {
                                // Repeated variable within one schema.
                                if x != row[i] {
                                    consistent = false;
                                    break;
                                }
                            }
                        }
                    }
                    if consistent {
                        next.push((a, w * m));
                    }
                }
            }
        }
        partials = next;
        if partials.is_empty() {
            break;
        }
    }

    let free: Vec<usize> = q.free.iter().map(|&v| v as usize).collect();
    let mut out: BTreeMap<Vec<i64>, i64> = BTreeMap::new();
    for (assign, w) in partials {
        let mut weight = w;
        for &v in identity_lift_vars {
            weight *= assign[v as usize].expect("lifted var is bound in the join");
        }
        let key: Vec<i64> = free.iter().map(|&v| assign[v].expect("free var bound")).collect();
        *out.entry(key).or_insert(0) += weight;
    }
    out.retain(|_, w| *w != 0);
    out
}

/// Canonicalize the engine's result into the oracle's shape: reorder
/// the key columns to `q.free` order and map to sorted rows.
pub fn canon_engine_result(q: &QueryDef, r: &Relation<i64>) -> BTreeMap<Vec<i64>, i64> {
    let r = if *r.schema() == q.free {
        r.clone()
    } else {
        r.reorder(&q.free)
    };
    r.iter()
        .map(|(t, &p)| {
            let row: Vec<i64> = (0..t.len())
                .map(|i| t.get(i).as_int().expect("int keys"))
                .collect();
            (row, p)
        })
        .collect()
}

/// One randomized batch: which relation, how many tuples (1–4096,
/// log-uniform via `size_exp`), and the RNG seed its contents derive
/// from.
#[derive(Clone, Debug)]
pub struct BatchSpec {
    pub rel: usize,
    pub size_exp: u32,
    pub jitter: u64,
    pub seed: u64,
}

pub fn batch_specs(max_exp: u32, batches: usize) -> impl Strategy<Value = Vec<BatchSpec>> {
    proptest::collection::vec(
        (0usize..64, 0u32..=max_exp, 0u64..u64::MAX, 0u64..u64::MAX)
            .prop_map(|(rel, size_exp, jitter, seed)| BatchSpec {
                rel,
                size_exp,
                jitter,
                seed,
            }),
        1..=batches,
    )
}

/// Materialize a batch: skewed fresh inserts mixed with deletes of
/// currently-live rows. The mirror db is updated as the batch is
/// built, so oracle state and emitted pairs always agree.
pub fn build_batch(
    spec: &BatchSpec,
    arity: usize,
    db_rel: &mut HashMap<Vec<i64>, i64>,
    live: &mut Vec<Vec<i64>>,
) -> Vec<(Tuple, i64)> {
    let size =
        (((1u64 << spec.size_exp) + spec.jitter % (1u64 << spec.size_exp)) as usize).min(4096);
    let mut rng = SmallRng::seed_from_u64(spec.seed);
    // Cap the expected number of hot-key tuples per batch so skewed
    // join fan-out stays measurable without making the oracle's join
    // output explode on 4096-tuple batches.
    let hot_prob = (200.0 / size as f64).min(0.5);
    let mut out = Vec::with_capacity(size);
    for _ in 0..size {
        let delete = !live.is_empty() && rng.gen_bool(0.3);
        if delete {
            let i = rng.gen_range(0..live.len());
            let row = live[i].clone();
            let m = db_rel.get_mut(&row).expect("live rows are present");
            *m -= 1;
            if *m == 0 {
                db_rel.remove(&row);
                live.swap_remove(i);
            }
            out.push((Tuple::new(row.iter().map(|&v| Value::Int(v)).collect()), -1));
        } else {
            let row: Vec<i64> = (0..arity)
                .map(|_| {
                    if rng.gen_bool(hot_prob) {
                        rng.gen_range(0..4)
                    } else {
                        rng.gen_range(0..100_000)
                    }
                })
                .collect();
            let m = db_rel.entry(row.clone()).or_insert(0);
            if *m == 0 {
                live.push(row.clone());
            }
            *m += 1;
            out.push((Tuple::new(row.iter().map(|&v| Value::Int(v)).collect()), 1));
        }
    }
    out
}

/// Drive a schedule through every engine and the oracle, asserting
/// each engine agrees with the oracle (and hence with every other
/// engine) after every batch. All engines receive identical deltas.
pub fn run_schedule(
    q: &QueryDef,
    engines: &mut [IvmEngine<i64>],
    specs: &[BatchSpec],
    identity_lift_vars: &[VarId],
) -> Result<(), TestCaseError> {
    let mut db: OracleDb = q.relations.iter().map(|_| HashMap::new()).collect();
    let mut live: Vec<Vec<Vec<i64>>> = q.relations.iter().map(|_| Vec::new()).collect();
    for (i, spec) in specs.iter().enumerate() {
        let rel = spec.rel % q.relations.len();
        let arity = q.relations[rel].schema.len();
        let pairs = build_batch(spec, arity, &mut db[rel], &mut live[rel]);
        let delta = Relation::from_pairs(q.relations[rel].schema.clone(), pairs);
        let expected = {
            for engine in engines.iter_mut() {
                engine.apply(rel, &Delta::Flat(delta.clone()));
            }
            oracle_eval(q, &db, identity_lift_vars)
        };
        for (e, engine) in engines.iter().enumerate() {
            let got = canon_engine_result(q, &engine.result());
            prop_assert_eq!(
                &got,
                &expected,
                "engine {} ({} workers) diverged from the oracle after batch {} (rel {})",
                e,
                engine.workers(),
                i,
                rel
            );
        }
    }
    Ok(())
}
