//! Shared differential-oracle support for integration tests: a
//! from-scratch reference evaluator plus randomized batch-schedule
//! generation. Included via `#[path = "support/oracle.rs"]` by
//! `oracle_differential.rs` (the original home of this code) and
//! `parallel_determinism.rs` — each test binary compiles its own copy,
//! so nothing here depends on test-specific state.
//!
//! The oracle stores each relation as a plain `HashMap<Vec<i64>, i64>`
//! multiset and evaluates the query by a hand-rolled hash join over
//! variable assignments (index the next relation on the already-bound
//! variables, extend, multiply multiplicities), then groups by the
//! free variables, multiplying in `g(x) = x` lifted values for the
//! designated bound variables. No `Relation`, no `TupleMap`, no view
//! trees — if the engine and the oracle agree across randomized
//! schedules, they agree for independent reasons.
//!
//! **Symbol (string) key columns**: schedules can declare a set of
//! variables whose values are interned strings. Generation draws from
//! a small skewed categorical domain per variable, interns the string
//! through the query catalog, and hands the engine a `Value::Sym` while
//! the oracle keeps the intern id as a plain `i64` — sound because
//! interning is injective (equal ids ⇔ equal strings; verified
//! independently by the `fivm-core` interning proptests), so the
//! oracle's join structure over ids is exactly the join structure over
//! strings, while the oracle still shares no code with the engine.

// Each including test binary uses a subset of these helpers.
#![allow(dead_code)]

use fivm::prelude::*;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, HashMap};

/// Oracle-side database: per relation, row → signed multiplicity.
pub type OracleDb = Vec<HashMap<Vec<i64>, i64>>;

/// Recompute the query result from scratch: hash join all relations,
/// multiply `g(x) = x` for `identity_lift_vars`, group by `q.free`.
pub fn oracle_eval(
    q: &QueryDef,
    db: &OracleDb,
    identity_lift_vars: &[VarId],
) -> BTreeMap<Vec<i64>, i64> {
    // A partial assignment: var id → value, plus the accumulated weight.
    let n_vars = q
        .relations
        .iter()
        .flat_map(|r| r.schema.iter())
        .map(|&v| v as usize + 1)
        .max()
        .unwrap_or(0);
    let mut partials: Vec<(Vec<Option<i64>>, i64)> = vec![(vec![None; n_vars], 1)];

    for (ri, rel) in q.relations.iter().enumerate() {
        let schema: Vec<VarId> = rel.schema.iter().copied().collect();
        let bound: Vec<usize> = schema
            .iter()
            .enumerate()
            .filter(|(_, v)| {
                partials
                    .first()
                    .is_some_and(|(a, _)| a[**v as usize].is_some())
            })
            .map(|(i, _)| i)
            .collect();
        // `bound` must be identical across partials: every partial has
        // exactly the variables of the previously joined relations.
        let mut index: HashMap<Vec<i64>, Vec<(&Vec<i64>, i64)>> = HashMap::new();
        for (row, &m) in &db[ri] {
            if m == 0 {
                continue;
            }
            index
                .entry(bound.iter().map(|&i| row[i]).collect())
                .or_default()
                .push((row, m));
        }
        let mut next: Vec<(Vec<Option<i64>>, i64)> = Vec::new();
        for (assign, w) in &partials {
            let probe: Vec<i64> = bound
                .iter()
                .map(|&i| assign[schema[i] as usize].expect("bound var"))
                .collect();
            if let Some(rows) = index.get(&probe) {
                for (row, m) in rows {
                    let mut a = assign.clone();
                    let mut consistent = true;
                    for (i, &v) in schema.iter().enumerate() {
                        match a[v as usize] {
                            None => a[v as usize] = Some(row[i]),
                            Some(x) => {
                                // Repeated variable within one schema.
                                if x != row[i] {
                                    consistent = false;
                                    break;
                                }
                            }
                        }
                    }
                    if consistent {
                        next.push((a, w * m));
                    }
                }
            }
        }
        partials = next;
        if partials.is_empty() {
            break;
        }
    }

    let free: Vec<usize> = q.free.iter().map(|&v| v as usize).collect();
    let mut out: BTreeMap<Vec<i64>, i64> = BTreeMap::new();
    for (assign, w) in partials {
        let mut weight = w;
        for &v in identity_lift_vars {
            weight *= assign[v as usize].expect("lifted var is bound in the join");
        }
        let key: Vec<i64> = free
            .iter()
            .map(|&v| assign[v].expect("free var bound"))
            .collect();
        *out.entry(key).or_insert(0) += weight;
    }
    out.retain(|_, w| *w != 0);
    out
}

/// Canonicalize the engine's result into the oracle's shape: reorder
/// the key columns to `q.free` order and map to sorted rows. Symbol
/// keys canonicalize to their intern id — the same `i64` the oracle
/// carried for them.
pub fn canon_engine_result(q: &QueryDef, r: &Relation<i64>) -> BTreeMap<Vec<i64>, i64> {
    let r = if *r.schema() == q.free {
        r.clone()
    } else {
        r.reorder(&q.free)
    };
    r.iter()
        .map(|(t, &p)| {
            let row: Vec<i64> = (0..t.len())
                .map(|i| match t.get(i) {
                    Value::Int(v) => *v,
                    Value::Sym(s) => i64::from(*s),
                    other => panic!("unexpected key value {other:?}"),
                })
                .collect();
            (row, p)
        })
        .collect()
}

/// One randomized batch: which relation, how many tuples (1–4096,
/// log-uniform via `size_exp`), and the RNG seed its contents derive
/// from.
#[derive(Clone, Debug)]
pub struct BatchSpec {
    pub rel: usize,
    pub size_exp: u32,
    pub jitter: u64,
    pub seed: u64,
}

pub fn batch_specs(max_exp: u32, batches: usize) -> impl Strategy<Value = Vec<BatchSpec>> {
    proptest::collection::vec(
        (0usize..64, 0u32..=max_exp, 0u64..u64::MAX, 0u64..u64::MAX).prop_map(
            |(rel, size_exp, jitter, seed)| BatchSpec {
                rel,
                size_exp,
                jitter,
                seed,
            },
        ),
        1..=batches,
    )
}

/// How one column of a generated relation produces key values.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ColKind {
    /// Skewed integers: a small hot pool plus a 100 k cold domain.
    Int,
    /// Interned strings from a skewed categorical domain, identified by
    /// the variable id so every relation sharing the variable draws
    /// from (and interns into) the same string domain.
    Sym(VarId),
}

/// The per-column kinds for a relation's schema: `Sym` for variables in
/// `sym_vars`, `Int` otherwise.
pub fn col_kinds(q: &QueryDef, rel: usize, sym_vars: &[VarId]) -> Vec<ColKind> {
    q.relations[rel]
        .schema
        .iter()
        .map(|v| {
            if sym_vars.contains(v) {
                ColKind::Sym(*v)
            } else {
                ColKind::Int
            }
        })
        .collect()
}

/// Materialize a batch: skewed fresh inserts mixed with deletes of
/// currently-live rows. The mirror db is updated as the batch is
/// built, so oracle state and emitted pairs always agree.
pub fn build_batch(
    spec: &BatchSpec,
    arity: usize,
    db_rel: &mut HashMap<Vec<i64>, i64>,
    live: &mut Vec<Vec<i64>>,
) -> Vec<(Tuple, i64)> {
    let kinds = vec![ColKind::Int; arity];
    build_batch_with_cols(spec, &kinds, &Catalog::new(), db_rel, live)
}

/// [`build_batch`] with per-column kinds. Symbol columns draw a code
/// from a small skewed categorical domain (hot 0–2, cold 0–39), intern
/// `"v<var>:<code>"` through `catalog`, store the intern id in the
/// oracle row and ship `Value::Sym(id)` to the engine. Skewed
/// categorical domains mean heavy duplicate-key fan-out — the regime
/// where a broken symbol equality would corrupt merges loudly.
pub fn build_batch_with_cols(
    spec: &BatchSpec,
    kinds: &[ColKind],
    catalog: &Catalog,
    db_rel: &mut HashMap<Vec<i64>, i64>,
    live: &mut Vec<Vec<i64>>,
) -> Vec<(Tuple, i64)> {
    let size =
        (((1u64 << spec.size_exp) + spec.jitter % (1u64 << spec.size_exp)) as usize).min(4096);
    let mut rng = SmallRng::seed_from_u64(spec.seed);
    // Cap the expected number of hot-key tuples per batch so skewed
    // join fan-out stays measurable without making the oracle's join
    // output explode on 4096-tuple batches.
    let hot_prob = (200.0 / size as f64).min(0.5);
    // Pre-intern each symbol column's 40-value domain once per batch
    // (idempotent across batches) instead of per generated row.
    let domains: Vec<Option<Vec<i64>>> = kinds
        .iter()
        .map(|kind| match kind {
            ColKind::Int => None,
            ColKind::Sym(var) => Some(
                (0..40)
                    .map(|code| i64::from(catalog.intern(&format!("v{var}:{code:02}"))))
                    .collect(),
            ),
        })
        .collect();
    let to_tuple = |row: &[i64]| -> Tuple {
        Tuple::new(
            row.iter()
                .zip(kinds)
                .map(|(&v, kind)| match kind {
                    ColKind::Int => Value::Int(v),
                    ColKind::Sym(_) => Value::Sym(v as u32),
                })
                .collect(),
        )
    };
    let mut out = Vec::with_capacity(size);
    for _ in 0..size {
        let delete = !live.is_empty() && rng.gen_bool(0.3);
        if delete {
            let i = rng.gen_range(0..live.len());
            let row = live[i].clone();
            let m = db_rel.get_mut(&row).expect("live rows are present");
            *m -= 1;
            if *m == 0 {
                db_rel.remove(&row);
                live.swap_remove(i);
            }
            out.push((to_tuple(&row), -1));
        } else {
            let row: Vec<i64> = domains
                .iter()
                .map(|domain| match domain {
                    None => {
                        if rng.gen_bool(hot_prob) {
                            rng.gen_range(0..4)
                        } else {
                            rng.gen_range(0..100_000)
                        }
                    }
                    Some(ids) => {
                        let code: usize = if rng.gen_bool(0.3) {
                            rng.gen_range(0..3)
                        } else {
                            rng.gen_range(0..40)
                        };
                        ids[code]
                    }
                })
                .collect();
            let m = db_rel.entry(row.clone()).or_insert(0);
            if *m == 0 {
                live.push(row.clone());
            }
            *m += 1;
            out.push((to_tuple(&row), 1));
        }
    }
    out
}

/// Lazy, reproducible delta schedules — the crash-point generalization
/// of [`run_schedule`]. Instead of driving engines in lockstep against
/// the oracle, a `ScheduleGen` regenerates the same `(rel, delta)`
/// sequence on demand against *any* catalog: the write-ahead-logged
/// engine under test, the uninterrupted reference engine, and any
/// prefix replay each build their own generator from the same specs,
/// and because generation (including string interning) is
/// seed-deterministic and order-identical, `Value::Sym` ids agree
/// across the independently-built catalogs — which is exactly the
/// property crash recovery must preserve and the fault-injection
/// harness asserts.
///
/// Laziness matters: symbols must be interned just before the batch
/// that uses them, so a durable engine's log interleaves symbol
/// records with update records the way a live system would.
pub struct ScheduleGen {
    kinds: Vec<Vec<ColKind>>,
    schemas: Vec<Schema>,
    db: OracleDb,
    live: Vec<Vec<Vec<i64>>>,
    specs: Vec<BatchSpec>,
    next: usize,
}

impl ScheduleGen {
    pub fn new(q: &QueryDef, specs: &[BatchSpec], sym_vars: &[VarId]) -> Self {
        ScheduleGen {
            kinds: (0..q.relations.len())
                .map(|rel| col_kinds(q, rel, sym_vars))
                .collect(),
            schemas: q.relations.iter().map(|r| r.schema.clone()).collect(),
            db: q.relations.iter().map(|_| HashMap::new()).collect(),
            live: q.relations.iter().map(|_| Vec::new()).collect(),
            specs: specs.to_vec(),
            next: 0,
        }
    }

    /// Generate the next batch, interning any symbol values through
    /// `catalog`.
    pub fn next_batch(&mut self, catalog: &Catalog) -> Option<(usize, Relation<i64>)> {
        let spec = self.specs.get(self.next)?.clone();
        self.next += 1;
        let rel = spec.rel % self.kinds.len();
        let pairs = build_batch_with_cols(
            &spec,
            &self.kinds[rel],
            catalog,
            &mut self.db[rel],
            &mut self.live[rel],
        );
        Some((rel, Relation::from_pairs(self.schemas[rel].clone(), pairs)))
    }
}

/// Drive a schedule through every engine and the oracle, asserting
/// each engine agrees with the oracle (and hence with every other
/// engine) after every batch. All engines receive identical deltas.
pub fn run_schedule(
    q: &QueryDef,
    engines: &mut [IvmEngine<i64>],
    specs: &[BatchSpec],
    identity_lift_vars: &[VarId],
) -> Result<(), TestCaseError> {
    run_schedule_sym(q, engines, specs, identity_lift_vars, &[])
}

/// [`run_schedule`] with a set of symbol-keyed variables: every column
/// holding one of `sym_vars` generates interned-string values (see
/// [`build_batch_with_cols`]). `identity_lift_vars` must stay disjoint
/// from `sym_vars` — symbols have no numeric lifting.
pub fn run_schedule_sym(
    q: &QueryDef,
    engines: &mut [IvmEngine<i64>],
    specs: &[BatchSpec],
    identity_lift_vars: &[VarId],
    sym_vars: &[VarId],
) -> Result<(), TestCaseError> {
    assert!(
        identity_lift_vars.iter().all(|v| !sym_vars.contains(v)),
        "symbol variables cannot take numeric liftings"
    );
    let kinds: Vec<Vec<ColKind>> = (0..q.relations.len())
        .map(|rel| col_kinds(q, rel, sym_vars))
        .collect();
    let mut db: OracleDb = q.relations.iter().map(|_| HashMap::new()).collect();
    let mut live: Vec<Vec<Vec<i64>>> = q.relations.iter().map(|_| Vec::new()).collect();
    for (i, spec) in specs.iter().enumerate() {
        let rel = spec.rel % q.relations.len();
        let pairs =
            build_batch_with_cols(spec, &kinds[rel], &q.catalog, &mut db[rel], &mut live[rel]);
        let delta = Relation::from_pairs(q.relations[rel].schema.clone(), pairs);
        let expected = {
            for engine in engines.iter_mut() {
                engine.apply(rel, &Delta::Flat(delta.clone()));
            }
            oracle_eval(q, &db, identity_lift_vars)
        };
        for (e, engine) in engines.iter().enumerate() {
            let got = canon_engine_result(q, &engine.result());
            prop_assert_eq!(
                &got,
                &expected,
                "engine {} ({} workers) diverged from the oracle after batch {} (rel {})",
                e,
                engine.workers(),
                i,
                rel
            );
        }
    }
    Ok(())
}
