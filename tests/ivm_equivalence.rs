//! Property-based cross-strategy equivalence: for random databases and
//! random insert/delete sequences, every maintenance strategy — F-IVM
//! (with and without factored updates), 1-IVM, the DBToaster-style
//! recursive scheme, and both re-evaluation baselines — must produce
//! the result of recomputation from scratch after every update.

use fivm::prelude::*;
use fivm::tuple;
use proptest::prelude::*;

/// A randomly generated single-tuple update.
#[derive(Clone, Debug)]
struct Upd {
    rel: usize,
    vals: Vec<i64>,
    mult: i64,
}

fn upd_strategy(n_rels: usize, arities: Vec<usize>) -> impl Strategy<Value = Upd> {
    (0..n_rels).prop_flat_map(move |rel| {
        let arity = arities[rel];
        (
            proptest::collection::vec(0i64..4, arity),
            prop_oneof![Just(1i64), Just(1), Just(1), Just(-1), Just(2)],
        )
            .prop_map(move |(vals, mult)| Upd { rel, vals, mult })
    })
}

fn run_equivalence(
    q: &QueryDef,
    vo: &VariableOrder,
    lifts: &LiftingMap<i64>,
    updates: &[Upd],
) -> Result<(), TestCaseError> {
    let tree = ViewTree::build(q, vo);
    let all: Vec<usize> = (0..q.relations.len()).collect();
    let mut fivm_engine: IvmEngine<i64> =
        IvmEngine::new(q.clone(), tree.clone(), &all, lifts.clone());
    let mut first_order = FirstOrderIvm::new(q.clone(), tree.clone(), lifts.clone());
    let mut recursive = RecursiveIvm::new(q.clone(), &all, lifts.clone());
    let mut db = Database::empty(q);

    for u in updates {
        let t = Tuple::new(u.vals.iter().map(|&v| Value::Int(v)).collect());
        let d = Relation::from_pairs(q.relations[u.rel].schema.clone(), [(t, u.mult)]);
        let delta = Delta::Flat(d.clone());
        fivm_engine.apply(u.rel, &delta);
        first_order.apply(u.rel, &delta);
        recursive.apply(u.rel, &delta);
        db.relations[u.rel].union_in_place(&d);
        let oracle = eval_tree(&tree, &db, lifts);
        prop_assert_eq!(&fivm_engine.result(), &oracle, "F-IVM diverged");
        prop_assert_eq!(first_order.result(), &oracle, "1-IVM diverged");
        prop_assert_eq!(&recursive.result(), &oracle, "DBT diverged");
    }
    // after deleting everything, all strategies return to empty
    let mut cleanup: Vec<(usize, Relation<i64>)> = Vec::new();
    for (ri, rel) in db.relations.iter().enumerate() {
        if !rel.is_empty() {
            cleanup.push((ri, rel.neg()));
        }
    }
    for (ri, d) in cleanup {
        let delta = Delta::Flat(d);
        fivm_engine.apply(ri, &delta);
        first_order.apply(ri, &delta);
        recursive.apply(ri, &delta);
    }
    prop_assert!(fivm_engine.result().is_empty());
    prop_assert!(first_order.result().is_empty());
    prop_assert!(recursive.result().is_empty());
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The running RST query, COUNT, no free variables.
    #[test]
    fn rst_count(updates in proptest::collection::vec(upd_strategy(3, vec![2, 3, 2]), 1..25)) {
        let q = QueryDef::example_rst(&[]);
        let vo = VariableOrder::parse("A - { B, C - { D, E } }", &q.catalog);
        run_equivalence(&q, &vo, &LiftingMap::new(), &updates)?;
    }

    /// Group-by variables and identity liftings (SUM(B·D)).
    #[test]
    fn rst_group_by_sum(updates in proptest::collection::vec(upd_strategy(3, vec![2, 3, 2]), 1..20)) {
        let q = QueryDef::example_rst(&["A", "C"]);
        let vo = VariableOrder::parse("A - { C - { B, D, E } }", &q.catalog);
        let mut lifts = LiftingMap::new();
        for v in ["B", "D"] {
            lifts.set(
                q.catalog.lookup(v).unwrap(),
                Lifting::from_fn(|x: &Value| x.as_int().unwrap()),
            );
        }
        run_equivalence(&q, &vo, &lifts, &updates)?;
    }

    /// A star join (the Housing shape, q-hierarchical).
    #[test]
    fn star_join(updates in proptest::collection::vec(upd_strategy(4, vec![2, 2, 2, 2]), 1..20)) {
        let q = QueryDef::new(
            &[("H", &["P", "W"]), ("S", &["P", "X"]), ("I", &["P", "Y"]), ("T", &["P", "Z"])],
            &[],
        );
        let vo = VariableOrder::parse("P - { W, X, Y, Z }", &q.catalog);
        run_equivalence(&q, &vo, &LiftingMap::new(), &updates)?;
    }

    /// A chain join with a different (auto-generated) variable order.
    #[test]
    fn chain_join_auto_order(updates in proptest::collection::vec(upd_strategy(3, vec![2, 2, 2]), 1..20)) {
        let q = QueryDef::new(
            &[("R", &["A", "B"]), ("S", &["B", "C"]), ("T", &["C", "D"])],
            &["B"],
        );
        let vo = VariableOrder::auto(&q);
        run_equivalence(&q, &vo, &LiftingMap::new(), &updates)?;
    }

    /// Factored updates agree with their flattened form on the engine.
    #[test]
    fn factored_updates_equal_flat(
        us in proptest::collection::vec((0i64..4, 1i64..3), 1..4),
        vs in proptest::collection::vec((0i64..4, 0i64..4, 1i64..3), 1..4),
        pre in proptest::collection::vec(upd_strategy(3, vec![2, 3, 2]), 1..12),
    ) {
        let q = QueryDef::example_rst(&["A"]);
        let vo = VariableOrder::parse("A - { B, C - { D, E } }", &q.catalog);
        let tree = ViewTree::build(&q, &vo);
        let all = [0usize, 1, 2];
        let mut flat_engine: IvmEngine<i64> =
            IvmEngine::new(q.clone(), tree.clone(), &all, LiftingMap::new());
        let mut fact_engine: IvmEngine<i64> =
            IvmEngine::new(q.clone(), tree, &all, LiftingMap::new());
        for u in &pre {
            let t = Tuple::new(u.vals.iter().map(|&v| Value::Int(v)).collect());
            let d = Delta::Flat(Relation::from_pairs(q.relations[u.rel].schema.clone(), [(t, u.mult)]));
            flat_engine.apply(u.rel, &d);
            fact_engine.apply(u.rel, &d);
        }
        // δS = f_A[A] ⊗ f_CE[C,E]
        let a = q.catalog.lookup("A").unwrap();
        let c = q.catalog.lookup("C").unwrap();
        let e = q.catalog.lookup("E").unwrap();
        let fa = Relation::from_pairs(
            Schema::new(vec![a]),
            us.iter().map(|&(x, m)| (tuple![x], m)),
        );
        let fce = Relation::from_pairs(
            Schema::new(vec![c, e]),
            vs.iter().map(|&(x, y, m)| (tuple![x, y], m)),
        );
        prop_assume!(!fa.is_empty() && !fce.is_empty());
        let factored = Delta::factored(vec![fa, fce]);
        fact_engine.apply(1, &factored);
        flat_engine.apply(
            1,
            &Delta::Flat(factored.flatten().reorder(&q.relations[1].schema)),
        );
        prop_assert_eq!(fact_engine.result(), flat_engine.result());
    }
}

/// Deterministic regression case distilled from the property: repeated
/// keys across relations with multiplicity 2 and interleaved deletes.
#[test]
fn regression_repeated_keys_and_deletes() {
    let q = QueryDef::example_rst(&[]);
    let vo = VariableOrder::parse("A - { B, C - { D, E } }", &q.catalog);
    let updates = vec![
        Upd {
            rel: 0,
            vals: vec![0, 0],
            mult: 2,
        },
        Upd {
            rel: 1,
            vals: vec![0, 1, 2],
            mult: 1,
        },
        Upd {
            rel: 2,
            vals: vec![1, 0],
            mult: 1,
        },
        Upd {
            rel: 0,
            vals: vec![0, 0],
            mult: -1,
        },
        Upd {
            rel: 2,
            vals: vec![1, 0],
            mult: -1,
        },
        Upd {
            rel: 2,
            vals: vec![1, 3],
            mult: 2,
        },
        Upd {
            rel: 1,
            vals: vec![0, 1, 2],
            mult: -1,
        },
    ];
    run_equivalence(&q, &vo, &LiftingMap::new(), &updates).unwrap();
}
