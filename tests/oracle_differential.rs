//! Differential oracle for the batch fast path: a from-scratch
//! reference evaluator (see `tests/support/oracle.rs`), sharing **no
//! code** with the engine's relational algebra, recomputes every query
//! result from the raw update history and must agree with the
//! incremental engine after every batch.
//!
//! Proptest drives randomized insert/delete batch schedules: batch
//! sizes 1–4096 (log-uniform, straddling every merge-regime threshold
//! of the flat-batch path), skewed join keys (a small hot pool plus a
//! large cold domain), interleaved relations, and deletes drawn from
//! the live multiset so multiplicities stay non-negative.
//!
//! Every schedule runs on **two engines**: the default sequential one
//! and one with 4 workers and a low parallel threshold, so the
//! range-partitioned parallel fan-out is held to the same oracle on
//! the same randomized schedules as the sequential path.

#[path = "support/oracle.rs"]
mod support;

use fivm::prelude::*;
use proptest::prelude::*;
use std::collections::HashMap;
use support::{
    batch_specs, canon_engine_result, oracle_eval, run_schedule, run_schedule_sym, OracleDb,
};

/// The sequential engine plus a parallel twin (4 workers, fan-out
/// forced onto small batches).
fn engine_pair(q: &QueryDef, tree: &ViewTree, lifts: &LiftingMap<i64>) -> Vec<IvmEngine<i64>> {
    let all: Vec<usize> = (0..q.relations.len()).collect();
    let seq = IvmEngine::new(q.clone(), tree.clone(), &all, lifts.clone());
    let mut par = IvmEngine::new(q.clone(), tree.clone(), &all, lifts.clone());
    par.set_workers(4);
    par.set_parallel_threshold(64);
    vec![seq, par]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// COUNT over the running star join (Figure 2): no free variables,
    /// batches up to 4096 tuples across all three relations.
    #[test]
    fn star_count_matches_oracle(specs in batch_specs(12, 6)) {
        let q = QueryDef::example_rst(&[]);
        let vo = VariableOrder::parse("A - { B, C - { D, E } }", &q.catalog);
        let tree = ViewTree::build(&q, &vo);
        let mut engines = engine_pair(&q, &tree, &LiftingMap::new());
        run_schedule(&q, &mut engines, &specs, &[])?;
    }

    /// Group-by with non-trivial liftings: free variables A and C,
    /// SUM(B * E) via identity liftings on the bound B and E.
    #[test]
    fn star_group_by_sum_matches_oracle(specs in batch_specs(11, 6)) {
        let q = QueryDef::example_rst(&["A", "C"]);
        let vo = VariableOrder::parse("A - { B, C - { D, E } }", &q.catalog);
        let tree = ViewTree::build(&q, &vo);
        let b = q.catalog.lookup("B").unwrap();
        let e = q.catalog.lookup("E").unwrap();
        let mut lifts = LiftingMap::<i64>::new();
        lifts.set(b, fivm::core::lifting::int_identity());
        lifts.set(e, fivm::core::lifting::int_identity());
        let mut engines = engine_pair(&q, &tree, &lifts);
        run_schedule(&q, &mut engines, &specs, &[b, e])?;
    }

    /// Triangle COUNT with indicator projections (Appendix B): the
    /// cyclic query exercises indicator support counting under batch
    /// deletes.
    #[test]
    fn triangle_with_indicators_matches_oracle(specs in batch_specs(11, 6)) {
        let q = QueryDef::triangle();
        let vo = VariableOrder::parse("A - B - C", &q.catalog);
        let mut tree = ViewTree::build(&q, &vo);
        add_indicators(&mut tree, &q);
        let mut engines = engine_pair(&q, &tree, &LiftingMap::new());
        run_schedule(&q, &mut engines, &specs, &[])?;
    }

    /// COUNT over the star join with **string join keys**: A and C —
    /// the variables every sibling probe routes on — carry interned
    /// symbols from skewed categorical domains, with inserts and
    /// deletes. A broken symbol equality/hash/order would corrupt
    /// probes, merges and canonicalization here.
    #[test]
    fn star_count_with_symbol_join_keys_matches_oracle(specs in batch_specs(11, 6)) {
        let q = QueryDef::example_rst(&[]);
        let vo = VariableOrder::parse("A - { B, C - { D, E } }", &q.catalog);
        let tree = ViewTree::build(&q, &vo);
        let a = q.catalog.lookup("A").unwrap();
        let c = q.catalog.lookup("C").unwrap();
        let mut engines = engine_pair(&q, &tree, &LiftingMap::new());
        run_schedule_sym(&q, &mut engines, &specs, &[], &[a, c])?;
    }

    /// Group-by over string keys: free variables A (symbolic) and C,
    /// SUM(B * E) over the numeric bound columns — symbol keys flow
    /// into the *result* relation and through `reorder`/canon.
    #[test]
    fn star_group_by_with_symbol_free_var_matches_oracle(specs in batch_specs(10, 6)) {
        let q = QueryDef::example_rst(&["A", "C"]);
        let vo = VariableOrder::parse("A - { B, C - { D, E } }", &q.catalog);
        let tree = ViewTree::build(&q, &vo);
        let a = q.catalog.lookup("A").unwrap();
        let b = q.catalog.lookup("B").unwrap();
        let e = q.catalog.lookup("E").unwrap();
        let mut lifts = LiftingMap::<i64>::new();
        lifts.set(b, fivm::core::lifting::int_identity());
        lifts.set(e, fivm::core::lifting::int_identity());
        let mut engines = engine_pair(&q, &tree, &lifts);
        run_schedule_sym(&q, &mut engines, &specs, &[b, e], &[a])?;
    }

    /// Triangle with indicators over **all-symbol** edges (the Twitter
    /// handle shape): every key column in the cyclic query is an
    /// interned string.
    #[test]
    fn triangle_with_symbol_keys_matches_oracle(specs in batch_specs(10, 6)) {
        let q = QueryDef::triangle();
        let vo = VariableOrder::parse("A - B - C", &q.catalog);
        let mut tree = ViewTree::build(&q, &vo);
        add_indicators(&mut tree, &q);
        let vars: Vec<VarId> = ["A", "B", "C"]
            .iter()
            .map(|n| q.catalog.lookup(n).unwrap())
            .collect();
        let mut engines = engine_pair(&q, &tree, &LiftingMap::new());
        run_schedule_sym(&q, &mut engines, &specs, &[], &vars)?;
    }
}

/// Deterministic worst-case shapes the random driver may miss: a
/// batch that is entirely one hot key, a batch that cancels itself,
/// and a batch that deletes everything a previous batch inserted.
/// Runs on the sequential engine and the 4-worker parallel twin.
#[test]
fn adversarial_batches_match_oracle() {
    let q = QueryDef::example_rst(&[]);
    let vo = VariableOrder::parse("A - { B, C - { D, E } }", &q.catalog);
    let tree = ViewTree::build(&q, &vo);
    let mut engines = engine_pair(&q, &tree, &LiftingMap::new());
    let mut db: OracleDb = q.relations.iter().map(|_| HashMap::new()).collect();

    let apply = |engines: &mut Vec<IvmEngine<i64>>,
                 db: &mut OracleDb,
                 rel: usize,
                 pairs: Vec<(Vec<i64>, i64)>| {
        for (row, m) in &pairs {
            let e = db[rel].entry(row.clone()).or_insert(0);
            *e += m;
            if *e == 0 {
                db[rel].remove(row);
            }
        }
        let delta = Relation::from_pairs(
            q.relations[rel].schema.clone(),
            pairs
                .into_iter()
                .map(|(row, m)| (Tuple::new(row.iter().map(|&v| Value::Int(v)).collect()), m)),
        );
        for engine in engines.iter_mut() {
            engine.apply(rel, &Delta::Flat(delta.clone()));
        }
    };
    let check = |engines: &Vec<IvmEngine<i64>>, db: &OracleDb, what: &str| {
        let expected = oracle_eval(&q, db, &[]);
        for (i, e) in engines.iter().enumerate() {
            assert_eq!(
                canon_engine_result(&q, &e.result()),
                expected,
                "engine {i} after {what}"
            );
        }
    };

    // 2000 R-tuples all sharing A=1 (one hot join key).
    apply(
        &mut engines,
        &mut db,
        0,
        (0..2000).map(|b| (vec![1, b], 1)).collect(),
    );
    // S and T matching the hub, enough to cross the hash-merge band.
    apply(
        &mut engines,
        &mut db,
        1,
        (0..1500).map(|c| (vec![1, c % 40, c], 1)).collect(),
    );
    apply(
        &mut engines,
        &mut db,
        2,
        (0..40).map(|c| (vec![c, c], 1)).collect(),
    );
    check(&engines, &db, "hot-key load");

    // A self-cancelling batch (every key nets to zero) is a no-op —
    // including for view stores and index bucket counters downstream.
    let before: Vec<Relation<i64>> = engines.iter().map(|e| e.result()).collect();
    let footprints: Vec<usize> = engines.iter().map(|e| e.index_footprint()).collect();
    apply(
        &mut engines,
        &mut db,
        0,
        (0..500)
            .flat_map(|b| [(vec![7, b], 3), (vec![7, b], -3)])
            .collect(),
    );
    for (i, e) in engines.iter().enumerate() {
        assert_eq!(
            e.result(),
            before[i],
            "engine {i}: cancelled batch changed the result"
        );
        assert_eq!(
            e.index_footprint(),
            footprints[i],
            "engine {i}: cancelled batch touched index buckets"
        );
    }
    check(&engines, &db, "self-cancelling batch");

    // A batch cancelling on *join-output* keys: distinct input rows
    // that project to the same view keys with opposite weights, so the
    // zero only appears after the per-step merge. Nothing downstream
    // of the first projection may observe it.
    let before: Vec<Relation<i64>> = engines.iter().map(|e| e.result()).collect();
    apply(
        &mut engines,
        &mut db,
        0,
        (0..40)
            .flat_map(|b| {
                // A=1 is the hot key: both rows join all 1500 S-tuples,
                // producing opposite-weight products that must cancel
                // in the per-step merge.
                [
                    (vec![1, 10_000 + 2 * b], 1),
                    (vec![1, 10_000 + 2 * b + 1], -1),
                ]
            })
            .collect(),
    );
    for (i, e) in engines.iter().enumerate() {
        // R's leaf store legitimately changed; the *result* must not
        // (the B column is marginalized with COUNT lifting, so +1/−1
        // pairs at the same A cancel at the first projection).
        assert_eq!(
            e.result(),
            before[i],
            "engine {i}: projection-cancelled batch leaked"
        );
    }
    check(&engines, &db, "projection-cancelling batch");

    // Delete everything ever inserted: all views drain to empty.
    for rel in 0..3 {
        let all: Vec<(Vec<i64>, i64)> = db[rel].iter().map(|(row, &m)| (row.clone(), -m)).collect();
        apply(&mut engines, &mut db, rel, all);
    }
    for (i, e) in engines.iter().enumerate() {
        assert!(e.result().is_empty(), "engine {i}");
        assert_eq!(e.total_entries(), 0, "engine {i}");
    }
}
