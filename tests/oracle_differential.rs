//! Differential oracle for the batch fast path: a from-scratch
//! reference evaluator, sharing **no code** with the engine's
//! relational algebra, recomputes every query result from the raw
//! update history and must agree with the incremental engine after
//! every batch.
//!
//! The oracle stores each relation as a plain `HashMap<Vec<i64>, i64>`
//! multiset and evaluates the query by a hand-rolled hash join over
//! variable assignments (index the next relation on the already-bound
//! variables, extend, multiply multiplicities), then groups by the
//! free variables, multiplying in `g(x) = x` lifted values for the
//! designated bound variables. No `Relation`, no `TupleMap`, no view
//! trees — if the engine and the oracle agree across randomized
//! schedules, they agree for independent reasons.
//!
//! Proptest drives randomized insert/delete batch schedules: batch
//! sizes 1–4096 (log-uniform, straddling every merge-regime threshold
//! of the flat-batch path), skewed join keys (a small hot pool plus a
//! large cold domain), interleaved relations, and deletes drawn from
//! the live multiset so multiplicities stay non-negative.

use fivm::prelude::*;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, HashMap};

// ---------------------------------------------------------------------
// The oracle
// ---------------------------------------------------------------------

/// Oracle-side database: per relation, row → signed multiplicity.
type OracleDb = Vec<HashMap<Vec<i64>, i64>>;

/// Recompute the query result from scratch: hash join all relations,
/// multiply `g(x) = x` for `identity_lift_vars`, group by `q.free`.
fn oracle_eval(q: &QueryDef, db: &OracleDb, identity_lift_vars: &[VarId]) -> BTreeMap<Vec<i64>, i64> {
    // A partial assignment: var id → value, plus the accumulated weight.
    let n_vars = q
        .relations
        .iter()
        .flat_map(|r| r.schema.iter())
        .map(|&v| v as usize + 1)
        .max()
        .unwrap_or(0);
    let mut partials: Vec<(Vec<Option<i64>>, i64)> = vec![(vec![None; n_vars], 1)];

    for (ri, rel) in q.relations.iter().enumerate() {
        let schema: Vec<VarId> = rel.schema.iter().copied().collect();
        let bound: Vec<usize> = schema
            .iter()
            .enumerate()
            .filter(|(_, v)| partials.first().is_some_and(|(a, _)| a[**v as usize].is_some()))
            .map(|(i, _)| i)
            .collect();
        // `bound` must be identical across partials: every partial has
        // exactly the variables of the previously joined relations.
        let mut index: HashMap<Vec<i64>, Vec<(&Vec<i64>, i64)>> = HashMap::new();
        for (row, &m) in &db[ri] {
            if m == 0 {
                continue;
            }
            index
                .entry(bound.iter().map(|&i| row[i]).collect())
                .or_default()
                .push((row, m));
        }
        let mut next: Vec<(Vec<Option<i64>>, i64)> = Vec::new();
        for (assign, w) in &partials {
            let probe: Vec<i64> = bound
                .iter()
                .map(|&i| assign[schema[i] as usize].expect("bound var"))
                .collect();
            if let Some(rows) = index.get(&probe) {
                for (row, m) in rows {
                    let mut a = assign.clone();
                    let mut consistent = true;
                    for (i, &v) in schema.iter().enumerate() {
                        match a[v as usize] {
                            None => a[v as usize] = Some(row[i]),
                            Some(x) => {
                                // Repeated variable within one schema.
                                if x != row[i] {
                                    consistent = false;
                                    break;
                                }
                            }
                        }
                    }
                    if consistent {
                        next.push((a, w * m));
                    }
                }
            }
        }
        partials = next;
        if partials.is_empty() {
            break;
        }
    }

    let free: Vec<usize> = q.free.iter().map(|&v| v as usize).collect();
    let mut out: BTreeMap<Vec<i64>, i64> = BTreeMap::new();
    for (assign, w) in partials {
        let mut weight = w;
        for &v in identity_lift_vars {
            weight *= assign[v as usize].expect("lifted var is bound in the join");
        }
        let key: Vec<i64> = free.iter().map(|&v| assign[v].expect("free var bound")).collect();
        *out.entry(key).or_insert(0) += weight;
    }
    out.retain(|_, w| *w != 0);
    out
}

/// Canonicalize the engine's result into the oracle's shape: reorder
/// the key columns to `q.free` order and map to sorted rows.
fn canon_engine_result(q: &QueryDef, r: &Relation<i64>) -> BTreeMap<Vec<i64>, i64> {
    let r = if *r.schema() == q.free {
        r.clone()
    } else {
        r.reorder(&q.free)
    };
    r.iter()
        .map(|(t, &p)| {
            let row: Vec<i64> = (0..t.len())
                .map(|i| t.get(i).as_int().expect("int keys"))
                .collect();
            (row, p)
        })
        .collect()
}

// ---------------------------------------------------------------------
// Randomized batch schedules
// ---------------------------------------------------------------------

/// One randomized batch: which relation, how many tuples (1–4096,
/// log-uniform via `size_exp`), and the RNG seed its contents derive
/// from.
#[derive(Clone, Debug)]
struct BatchSpec {
    rel: usize,
    size_exp: u32,
    jitter: u64,
    seed: u64,
}

fn batch_specs(max_exp: u32, batches: usize) -> impl Strategy<Value = Vec<BatchSpec>> {
    proptest::collection::vec(
        (0usize..64, 0u32..=max_exp, 0u64..u64::MAX, 0u64..u64::MAX)
            .prop_map(|(rel, size_exp, jitter, seed)| BatchSpec {
                rel,
                size_exp,
                jitter,
                seed,
            }),
        1..=batches,
    )
}

/// Materialize a batch: skewed fresh inserts mixed with deletes of
/// currently-live rows. The mirror db is updated as the batch is
/// built, so oracle state and emitted pairs always agree.
fn build_batch(
    spec: &BatchSpec,
    arity: usize,
    db_rel: &mut HashMap<Vec<i64>, i64>,
    live: &mut Vec<Vec<i64>>,
) -> Vec<(Tuple, i64)> {
    let size = (((1u64 << spec.size_exp) + spec.jitter % (1u64 << spec.size_exp)) as usize).min(4096);
    let mut rng = SmallRng::seed_from_u64(spec.seed);
    // Cap the expected number of hot-key tuples per batch so skewed
    // join fan-out stays measurable without making the oracle's join
    // output explode on 4096-tuple batches.
    let hot_prob = (200.0 / size as f64).min(0.5);
    let mut out = Vec::with_capacity(size);
    for _ in 0..size {
        let delete = !live.is_empty() && rng.gen_bool(0.3);
        if delete {
            let i = rng.gen_range(0..live.len());
            let row = live[i].clone();
            let m = db_rel.get_mut(&row).expect("live rows are present");
            *m -= 1;
            if *m == 0 {
                db_rel.remove(&row);
                live.swap_remove(i);
            }
            out.push((Tuple::new(row.iter().map(|&v| Value::Int(v)).collect()), -1));
        } else {
            let row: Vec<i64> = (0..arity)
                .map(|_| {
                    if rng.gen_bool(hot_prob) {
                        rng.gen_range(0..4)
                    } else {
                        rng.gen_range(0..100_000)
                    }
                })
                .collect();
            let m = db_rel.entry(row.clone()).or_insert(0);
            if *m == 0 {
                live.push(row.clone());
            }
            *m += 1;
            out.push((Tuple::new(row.iter().map(|&v| Value::Int(v)).collect()), 1));
        }
    }
    out
}

/// Drive a schedule through the engine and the oracle, asserting
/// agreement after every batch.
fn run_schedule(
    q: &QueryDef,
    engine: &mut IvmEngine<i64>,
    specs: &[BatchSpec],
    identity_lift_vars: &[VarId],
) -> Result<(), TestCaseError> {
    let mut db: OracleDb = q.relations.iter().map(|_| HashMap::new()).collect();
    let mut live: Vec<Vec<Vec<i64>>> = q.relations.iter().map(|_| Vec::new()).collect();
    for (i, spec) in specs.iter().enumerate() {
        let rel = spec.rel % q.relations.len();
        let arity = q.relations[rel].schema.len();
        let pairs = build_batch(spec, arity, &mut db[rel], &mut live[rel]);
        let delta = Relation::from_pairs(q.relations[rel].schema.clone(), pairs);
        engine.apply(rel, &Delta::Flat(delta));
        let expected = oracle_eval(q, &db, identity_lift_vars);
        let got = canon_engine_result(q, &engine.result());
        prop_assert_eq!(
            &got,
            &expected,
            "engine diverged from the oracle after batch {} (rel {})",
            i,
            rel
        );
    }
    Ok(())
}

// ---------------------------------------------------------------------
// The suites
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// COUNT over the running star join (Figure 2): no free variables,
    /// batches up to 4096 tuples across all three relations.
    #[test]
    fn star_count_matches_oracle(specs in batch_specs(12, 6)) {
        let q = QueryDef::example_rst(&[]);
        let vo = VariableOrder::parse("A - { B, C - { D, E } }", &q.catalog);
        let tree = ViewTree::build(&q, &vo);
        let mut engine: IvmEngine<i64> =
            IvmEngine::new(q.clone(), tree, &[0, 1, 2], LiftingMap::new());
        run_schedule(&q, &mut engine, &specs, &[])?;
    }

    /// Group-by with non-trivial liftings: free variables A and C,
    /// SUM(B * E) via identity liftings on the bound B and E.
    #[test]
    fn star_group_by_sum_matches_oracle(specs in batch_specs(11, 6)) {
        let q = QueryDef::example_rst(&["A", "C"]);
        let vo = VariableOrder::parse("A - { B, C - { D, E } }", &q.catalog);
        let tree = ViewTree::build(&q, &vo);
        let b = q.catalog.lookup("B").unwrap();
        let e = q.catalog.lookup("E").unwrap();
        let mut lifts = LiftingMap::<i64>::new();
        lifts.set(b, fivm::core::lifting::int_identity());
        lifts.set(e, fivm::core::lifting::int_identity());
        let mut engine: IvmEngine<i64> = IvmEngine::new(q.clone(), tree, &[0, 1, 2], lifts);
        run_schedule(&q, &mut engine, &specs, &[b, e])?;
    }

    /// Triangle COUNT with indicator projections (Appendix B): the
    /// cyclic query exercises indicator support counting under batch
    /// deletes.
    #[test]
    fn triangle_with_indicators_matches_oracle(specs in batch_specs(11, 6)) {
        let q = QueryDef::triangle();
        let vo = VariableOrder::parse("A - B - C", &q.catalog);
        let mut tree = ViewTree::build(&q, &vo);
        add_indicators(&mut tree, &q);
        let mut engine: IvmEngine<i64> =
            IvmEngine::new(q.clone(), tree, &[0, 1, 2], LiftingMap::new());
        run_schedule(&q, &mut engine, &specs, &[])?;
    }
}

/// Deterministic worst-case shapes the random driver may miss: a
/// batch that is entirely one hot key, a batch that cancels itself,
/// and a batch that deletes everything a previous batch inserted.
#[test]
fn adversarial_batches_match_oracle() {
    let q = QueryDef::example_rst(&[]);
    let vo = VariableOrder::parse("A - { B, C - { D, E } }", &q.catalog);
    let tree = ViewTree::build(&q, &vo);
    let mut engine: IvmEngine<i64> =
        IvmEngine::new(q.clone(), tree, &[0, 1, 2], LiftingMap::new());
    let mut db: OracleDb = q.relations.iter().map(|_| HashMap::new()).collect();

    let apply = |engine: &mut IvmEngine<i64>,
                     db: &mut OracleDb,
                     rel: usize,
                     pairs: Vec<(Vec<i64>, i64)>| {
        for (row, m) in &pairs {
            let e = db[rel].entry(row.clone()).or_insert(0);
            *e += m;
            if *e == 0 {
                db[rel].remove(row);
            }
        }
        let delta = Relation::from_pairs(
            q.relations[rel].schema.clone(),
            pairs.into_iter().map(|(row, m)| {
                (Tuple::new(row.iter().map(|&v| Value::Int(v)).collect()), m)
            }),
        );
        engine.apply(rel, &Delta::Flat(delta));
    };

    // 2000 R-tuples all sharing A=1 (one hot join key).
    apply(&mut engine, &mut db, 0, (0..2000).map(|b| (vec![1, b], 1)).collect());
    // S and T matching the hub, enough to cross the hash-merge band.
    apply(&mut engine, &mut db, 1, (0..1500).map(|c| (vec![1, c % 40, c], 1)).collect());
    apply(&mut engine, &mut db, 2, (0..40).map(|c| (vec![c, c], 1)).collect());
    assert_eq!(
        canon_engine_result(&q, &engine.result()),
        oracle_eval(&q, &db, &[])
    );

    // A self-cancelling batch (every key nets to zero) is a no-op.
    let before = engine.result();
    apply(
        &mut engine,
        &mut db,
        0,
        (0..500).flat_map(|b| [(vec![7, b], 3), (vec![7, b], -3)]).collect(),
    );
    assert_eq!(engine.result(), before);
    assert_eq!(
        canon_engine_result(&q, &engine.result()),
        oracle_eval(&q, &db, &[])
    );

    // Delete everything ever inserted: all views drain to empty.
    for rel in 0..3 {
        let all: Vec<(Vec<i64>, i64)> =
            db[rel].iter().map(|(row, &m)| (row.clone(), -m)).collect();
        apply(&mut engine, &mut db, rel, all);
    }
    assert!(engine.result().is_empty());
    assert_eq!(engine.total_entries(), 0);
}
