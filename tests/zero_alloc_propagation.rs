//! Proof of the zero-allocation propagation hot path: applying
//! single-tuple updates — and fixed-size **batches** — to a warmed
//! star-join engine performs **no heap allocation** in the steady
//! state.
//!
//! A counting `#[global_allocator]` wraps the system allocator; each
//! phase warms the engine (growing view tables, secondary-index
//! buckets and scratch buffers — including the batch path's
//! sort/merge buffer and hash scratch at the phase's batch size),
//! then replays a fixed insert/delete toggle cycle and asserts the
//! allocation counter did not move. The batch phase runs at one size
//! per merge regime of the flat-batch path (sort/merge band and hash
//! band). This file contains exactly one test so no concurrent test
//! can pollute the counter; the phases run sequentially inside it.

use fivm::prelude::*;
use fivm::tuple;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

struct CountingAllocator;

static COUNTING: AtomicBool = AtomicBool::new(false);
static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

// The claim under test is that the *engine* (running on this test's
// thread) does not allocate — but a `#[global_allocator]` sees every
// thread in the process, and the libtest harness's main thread
// occasionally allocates a few bytes while the counting window is
// open (observed: ~20% of runs on a single-core host, always on the
// thread named "main"). Counting is therefore scoped to the thread
// that opened the window: a const-initialized thread-local flag
// (`Cell<bool>` has no destructor, so first access on any thread
// performs no allocation and cannot recurse into the allocator).
thread_local! {
    static COUNTING_THREAD: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

#[inline]
fn counting_here() -> bool {
    COUNTING.load(Ordering::Relaxed) && COUNTING_THREAD.with(std::cell::Cell::get)
}

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if counting_here() {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if counting_here() {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// One toggle step: `(relation, pre-built delta)`.
type Step = (usize, Delta<i64>);

/// A full cycle of single-tuple updates that returns the database to
/// its starting state: membership toggles (insert a fresh tuple, then
/// delete it) and payload toggles (bump an existing tuple's
/// multiplicity, then undo it).
fn toggle_cycle(q: &QueryDef) -> Vec<Step> {
    let single = |rel: usize, t: Tuple, m: i64| -> Step {
        (
            rel,
            Delta::Flat(Relation::from_pairs(
                q.relations[rel].schema.clone(),
                [(t, m)],
            )),
        )
    };
    vec![
        // membership toggles on fresh keys
        single(0, tuple![9, 90], 1),
        single(1, tuple![9, 9, 90], 1),
        single(2, tuple![9, 90], 1),
        single(2, tuple![9, 90], -1),
        single(1, tuple![9, 9, 90], -1),
        single(0, tuple![9, 90], -1),
        // payload toggles on resident keys (multiplicity 2 → 3 → 2)
        single(0, tuple![1, 1], 1),
        single(0, tuple![1, 1], -1),
        single(1, tuple![1, 1, 1], 1),
        single(1, tuple![1, 1, 1], -1),
        single(2, tuple![1, 1], 1),
        single(2, tuple![1, 1], -1),
    ]
}

#[test]
fn steady_state_propagation_allocates_nothing() {
    single_tuple_phase();
    // One batch size per merge regime: 300 exercises the sort/merge
    // band, 1500 crosses into the hash-scratch band.
    for batch_size in [300, 1500] {
        batch_phase(batch_size);
    }
    symbol_phase();
    factored_phase();
    logging_phase();
}

fn single_tuple_phase() {
    // The running star-join COUNT query (paper Figure 2): R(A,B) ⋈
    // S(A,C,E) ⋈ T(C,D), all relations updatable, all views live.
    let q = QueryDef::example_rst(&[]);
    let vo = VariableOrder::parse("A - { B, C - { D, E } }", &q.catalog);
    let tree = ViewTree::build(&q, &vo);
    let mut engine: IvmEngine<i64> = IvmEngine::new(q.clone(), tree, &[0, 1, 2], LiftingMap::new());

    // Resident working set (multiplicity 2 where payload toggles land).
    let base: Vec<Step> = {
        let mut v = Vec::new();
        for (rel, tuples) in [
            (
                0usize,
                vec![tuple![1, 1], tuple![1, 2], tuple![2, 3], tuple![3, 4]],
            ),
            (
                1,
                vec![
                    tuple![1, 1, 1],
                    tuple![1, 1, 2],
                    tuple![1, 2, 3],
                    tuple![2, 2, 4],
                ],
            ),
            (
                2,
                vec![tuple![1, 1], tuple![2, 2], tuple![2, 3], tuple![3, 4]],
            ),
        ] {
            for t in tuples {
                let d = Relation::from_pairs(q.relations[rel].schema.clone(), [(t, 2i64)]);
                v.push((rel, Delta::Flat(d)));
            }
        }
        v
    };
    for (rel, d) in &base {
        engine.apply(*rel, d);
    }
    let result_before = engine.result();
    assert!(!result_before.is_empty(), "join produced results");

    // Everything the steady state touches is pre-built: the toggle
    // deltas themselves allocate at construction, not at apply time.
    let cycle = toggle_cycle(&q);

    // Warm-up: two full cycles grow every table, index bucket and
    // scratch buffer the toggles will ever touch (including the hash
    // table's tombstone-reuse paths).
    for _ in 0..2 {
        for (rel, d) in &cycle {
            engine.apply(*rel, d);
        }
    }

    // Steady state: replay the same cycle; the counter must not move.
    ALLOCATIONS.store(0, Ordering::SeqCst);
    COUNTING_THREAD.with(|c| c.set(true));
    COUNTING.store(true, Ordering::SeqCst);
    for _ in 0..25 {
        for (rel, d) in &cycle {
            engine.apply(*rel, d);
        }
    }
    COUNTING.store(false, Ordering::SeqCst);
    let allocations = ALLOCATIONS.load(Ordering::SeqCst);

    assert_eq!(
        allocations, 0,
        "steady-state single-tuple propagation must not allocate \
         (saw {allocations} allocations across 25 toggle cycles)"
    );

    // And the toggles were real work, not no-ops: the result moved
    // through intermediate states and returned to the baseline.
    assert_eq!(engine.result(), result_before);
    for (rel, d) in &cycle[..3] {
        // the first three inserts close a fresh join result at A = 9
        engine.apply(*rel, d);
    }
    assert_ne!(engine.result(), result_before, "toggles change the count");
}

/// Symbol-key variant: string-valued key columns, interned at "load"
/// (delta construction — outside the counting window, where the symbol
/// table's one-allocation-per-distinct-string cost belongs), propagate
/// with **zero** allocations in the steady state: `Value::Sym` is a
/// 4-byte id, so cloning, probing, hashing and merging string-keyed
/// tuples never touches the heap or an `Arc` refcount. This is the
/// load-time-interning claim of the symbol lifecycle (fivm-core
/// `schema.rs`), enforced.
fn symbol_phase() {
    let q = QueryDef::example_rst(&[]);
    let vo = VariableOrder::parse("A - { B, C - { D, E } }", &q.catalog);
    let tree = ViewTree::build(&q, &vo);
    let mut engine: IvmEngine<i64> = IvmEngine::new(q.clone(), tree, &[0, 1, 2], LiftingMap::new());

    // All interning happens here, while deltas are pre-built.
    let sym = |s: &str| q.catalog.sym(s);
    let single = |rel: usize, vals: Vec<Value>, m: i64| -> Step {
        (
            rel,
            Delta::Flat(Relation::from_pairs(
                q.relations[rel].schema.clone(),
                [(Tuple::new(vals), m)],
            )),
        )
    };
    // Resident working set: A and C columns are interned strings.
    let base: Vec<Step> = vec![
        single(0, vec![sym("alpha"), Value::Int(1)], 2),
        single(0, vec![sym("beta"), Value::Int(2)], 2),
        single(1, vec![sym("alpha"), sym("red"), Value::Int(1)], 2),
        single(1, vec![sym("beta"), sym("blue"), Value::Int(2)], 2),
        single(2, vec![sym("red"), Value::Int(1)], 2),
        single(2, vec![sym("blue"), Value::Int(2)], 2),
    ];
    for (rel, d) in &base {
        engine.apply(*rel, d);
    }
    let result_before = engine.result();
    assert!(
        !result_before.is_empty(),
        "symbol-keyed join produced results"
    );

    // Toggles: membership churn on fresh symbol keys plus payload
    // toggles on resident symbol keys.
    let cycle: Vec<Step> = vec![
        single(0, vec![sym("gamma"), Value::Int(9)], 1),
        single(1, vec![sym("gamma"), sym("green"), Value::Int(9)], 1),
        single(2, vec![sym("green"), Value::Int(9)], 1),
        single(2, vec![sym("green"), Value::Int(9)], -1),
        single(1, vec![sym("gamma"), sym("green"), Value::Int(9)], -1),
        single(0, vec![sym("gamma"), Value::Int(9)], -1),
        single(0, vec![sym("alpha"), Value::Int(1)], 1),
        single(0, vec![sym("alpha"), Value::Int(1)], -1),
        single(1, vec![sym("beta"), sym("blue"), Value::Int(2)], 1),
        single(1, vec![sym("beta"), sym("blue"), Value::Int(2)], -1),
    ];

    for _ in 0..2 {
        for (rel, d) in &cycle {
            engine.apply(*rel, d);
        }
    }

    ALLOCATIONS.store(0, Ordering::SeqCst);
    COUNTING_THREAD.with(|c| c.set(true));
    COUNTING.store(true, Ordering::SeqCst);
    for _ in 0..25 {
        for (rel, d) in &cycle {
            engine.apply(*rel, d);
        }
    }
    COUNTING.store(false, Ordering::SeqCst);
    let allocations = ALLOCATIONS.load(Ordering::SeqCst);

    assert_eq!(
        allocations, 0,
        "steady-state propagation of interned string keys must not \
         allocate (saw {allocations} allocations across 25 toggle cycles)"
    );
    assert_eq!(engine.result(), result_before);
}

/// Factored variant: steady-state propagation of **factored deltas**
/// through the compiled factored path allocates nothing. Each cycle
/// toggles rank-1 products (insert, then the negated factor cancels
/// them) in two factorization shapes of S(A,C,E) — the precompiled
/// all-singleton rank-1 shape and a grouped `[A] ⊗ [C,E]` shape — plus
/// rank-1 toggles on R and T, so the slot program (cross, fused join,
/// store flatten via `concat_project`), the plan-cache probe, and the
/// accumulator all run with warmed buffers.
fn factored_phase() {
    let q = QueryDef::example_rst(&[]);
    let vo = VariableOrder::parse("A - { B, C - { D, E } }", &q.catalog);
    let tree = ViewTree::build(&q, &vo);
    let mut engine: IvmEngine<i64> = IvmEngine::new(q.clone(), tree, &[0, 1, 2], LiftingMap::new());

    // Resident working set (flat inserts; the factored toggles join it).
    for (rel, tuples) in [
        (0usize, vec![tuple![1, 1], tuple![1, 2], tuple![2, 3]]),
        (1, vec![tuple![1, 1, 1], tuple![1, 2, 3], tuple![2, 2, 4]]),
        (2, vec![tuple![1, 1], tuple![2, 2], tuple![2, 3]]),
    ] {
        for t in tuples {
            let d = Relation::from_pairs(q.relations[rel].schema.clone(), [(t, 2i64)]);
            engine.apply(rel, &Delta::Flat(d));
        }
    }
    let result_before = engine.result();

    let var = |n: &str| q.catalog.lookup(n).unwrap();
    let (a, b, c, d_, e) = (var("A"), var("B"), var("C"), var("D"), var("E"));
    let vec1 = |v, x: i64, m: i64| Relation::from_pairs(Schema::new(vec![v]), [(tuple![x], m)]);
    // Toggle cycle: every insert has its cancelling negation.
    let cycle: Vec<(usize, Delta<i64>)> = vec![
        // S as three vector factors (the precompiled rank-1 shape),
        // fresh keys A=9/C=9/E=90: membership appears then disappears.
        (
            1,
            Delta::factored(vec![vec1(a, 9, 1), vec1(c, 9, 1), vec1(e, 90, 1)]),
        ),
        (
            1,
            Delta::factored(vec![vec1(a, 9, -1), vec1(c, 9, 1), vec1(e, 90, 1)]),
        ),
        // S as a grouped [A] ⊗ [C,E] shape on resident keys (payload
        // toggles: multiplicity 2 → 3 → 2).
        (
            1,
            Delta::factored(vec![
                vec1(a, 1, 1),
                Relation::from_pairs(Schema::new(vec![c, e]), [(tuple![2, 3], 1i64)]),
            ]),
        ),
        (
            1,
            Delta::factored(vec![
                vec1(a, 1, -1),
                Relation::from_pairs(Schema::new(vec![c, e]), [(tuple![2, 3], 1i64)]),
            ]),
        ),
        // R and T rank-1 toggles (fresh and resident keys).
        (0, Delta::factored(vec![vec1(a, 9, 1), vec1(b, 90, 1)])),
        (0, Delta::factored(vec![vec1(a, 9, -1), vec1(b, 90, 1)])),
        (2, Delta::factored(vec![vec1(c, 2, 1), vec1(d_, 2, 1)])),
        (2, Delta::factored(vec![vec1(c, 2, -1), vec1(d_, 2, 1)])),
    ];

    // Warm-up: grows slot buffers, plan caches (both shapes compile
    // here), accumulator storage and view tables.
    for _ in 0..2 {
        for (rel, d) in &cycle {
            engine.apply(*rel, d);
        }
    }

    ALLOCATIONS.store(0, Ordering::SeqCst);
    COUNTING_THREAD.with(|c| c.set(true));
    COUNTING.store(true, Ordering::SeqCst);
    for _ in 0..25 {
        for (rel, d) in &cycle {
            engine.apply(*rel, d);
        }
    }
    COUNTING.store(false, Ordering::SeqCst);
    let allocations = ALLOCATIONS.load(Ordering::SeqCst);

    assert_eq!(
        allocations, 0,
        "steady-state factored propagation must not allocate \
         (saw {allocations} allocations across 25 toggle cycles)"
    );
    assert_eq!(
        engine.result(),
        result_before,
        "toggles returned to baseline"
    );
    // The toggles were real factored work: the singleton and grouped
    // shapes both live in the plan cache, and nothing was recompiled.
    assert_eq!(engine.factored_shapes_cached(1), 2);
}

/// Write-ahead-logging variant: propagation **with durability logging
/// enabled** stays zero-alloc in the steady state. The log's encode
/// scratch and group-commit buffer are both reused, `log_new_symbols`
/// early-returns without touching the heap when the symbol table has
/// not grown, and flushing is plain positional writes — so after
/// warm-up (which sizes both buffers to their high-water marks) a
/// logged toggle cycle performs exactly as many allocations as an
/// unlogged one: zero. `flush_bytes` is set low enough that the
/// counting window crosses many flush boundaries, so the group-commit
/// drain path is covered too, not just buffered appends.
///
/// The policy is `EveryFlush` because the buffer is *retained* until
/// the bytes are fsynced (the fault-tolerance contract: a failed fsync
/// may drop dirty pages, so acked-but-unsynced records must stay
/// rewritable from memory — see docs/fault-injection.md). Zero-alloc
/// steady state therefore holds between durability points (fsyncs,
/// checkpoints, rotations), which every production configuration has;
/// a window with none would legitimately grow the retained buffer.
fn logging_phase() {
    let dir = std::env::temp_dir().join(format!("fivm-zeroalloc-log-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let q = QueryDef::example_rst(&[]);
    let vo = VariableOrder::parse("A - { B, C - { D, E } }", &q.catalog);
    let tree = ViewTree::build(&q, &vo);
    let engine: IvmEngine<i64> = IvmEngine::new(q.clone(), tree, &[0, 1, 2], LiftingMap::new());
    let cfg = DurabilityConfig {
        checkpoint_every: 0,          // checkpoints allocate; they are not the hot path
        segment_bytes: 1 << 30,       // no rotation inside the counting window
        flush_bytes: 4096,            // ~ every 4 toggle cycles cross a flush
        sync: SyncPolicy::EveryFlush, // each flush fsyncs, bounding the retained buffer
        ..DurabilityConfig::default()
    };
    let mut engine = DurableEngine::create(&dir, engine, cfg).unwrap();

    for (rel, tuples) in [
        (
            0usize,
            vec![tuple![1, 1], tuple![1, 2], tuple![2, 3], tuple![3, 4]],
        ),
        (
            1,
            vec![
                tuple![1, 1, 1],
                tuple![1, 1, 2],
                tuple![1, 2, 3],
                tuple![2, 2, 4],
            ],
        ),
        (
            2,
            vec![tuple![1, 1], tuple![2, 2], tuple![2, 3], tuple![3, 4]],
        ),
    ] {
        for t in tuples {
            let d = Relation::from_pairs(q.relations[rel].schema.clone(), [(t, 2i64)]);
            engine.apply(rel, &Delta::Flat(d)).unwrap();
        }
    }
    let result_before = engine.engine().result();

    let cycle = toggle_cycle(&q);
    for _ in 0..2 {
        for (rel, d) in &cycle {
            engine.apply(*rel, d).unwrap();
        }
    }

    ALLOCATIONS.store(0, Ordering::SeqCst);
    COUNTING_THREAD.with(|c| c.set(true));
    COUNTING.store(true, Ordering::SeqCst);
    for _ in 0..25 {
        for (rel, d) in &cycle {
            engine.apply(*rel, d).unwrap();
        }
    }
    COUNTING.store(false, Ordering::SeqCst);
    let allocations = ALLOCATIONS.load(Ordering::SeqCst);

    assert_eq!(
        allocations, 0,
        "steady-state propagation with WAL logging must not allocate \
         (saw {allocations} allocations across 25 logged toggle cycles)"
    );
    assert_eq!(engine.engine().result(), result_before);

    // The log was real: recovery replays every logged toggle back to
    // the same state.
    engine.sync_all().unwrap();
    drop(engine);
    let q2 = QueryDef::example_rst(&[]);
    let vo2 = VariableOrder::parse("A - { B, C - { D, E } }", &q2.catalog);
    let tree2 = ViewTree::build(&q2, &vo2);
    let engine2: IvmEngine<i64> = IvmEngine::new(q2.clone(), tree2, &[0, 1, 2], LiftingMap::new());
    let (recovered, report) =
        DurableEngine::open(&dir, engine2, DurabilityConfig::default()).unwrap();
    assert_eq!(report.last_lsn, 12 + 27 * 12);
    assert_eq!(recovered.engine().result(), result_before);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Batch variant: after warm-up at `batch_size`, repeated toggle
/// batches at that size perform zero allocations. Each cycle inserts
/// one `batch_size`-tuple batch into R and one into S (a slice of it
/// joining the resident working set, the rest fresh keys) and then
/// deletes both, so every cycle exercises batch store merges, index
/// maintenance, sibling probes and the size-appropriate merge regime.
fn batch_phase(batch_size: usize) {
    let q = QueryDef::example_rst(&[]);
    let vo = VariableOrder::parse("A - { B, C - { D, E } }", &q.catalog);
    let tree = ViewTree::build(&q, &vo);
    let mut engine: IvmEngine<i64> = IvmEngine::new(q.clone(), tree, &[0, 1, 2], LiftingMap::new());

    // Resident working set the joining slice of each batch hits.
    for (rel, tuples) in [
        (0usize, vec![tuple![1, 1], tuple![2, 3]]),
        (1, vec![tuple![1, 1, 1], tuple![1, 2, 3], tuple![2, 2, 4]]),
        (2, vec![tuple![1, 1], tuple![2, 2], tuple![2, 3]]),
    ] {
        for t in tuples {
            let d = Relation::from_pairs(q.relations[rel].schema.clone(), [(t, 1i64)]);
            engine.apply(rel, &Delta::Flat(d));
        }
    }
    let result_before = engine.result();

    // Pre-built toggle batches: an insert batch and its negation, for
    // R(A,B) and S(A,C,E). One tuple in eight joins the resident keys
    // (A ∈ {1, 2}); the rest live on fresh keys so the batch also
    // exercises appear/disappear churn at scale.
    let batch = |rel: usize, sign: i64| -> Delta<i64> {
        let tuples: Vec<(Tuple, i64)> = (0..batch_size)
            .map(|i| {
                let i = i as i64;
                let a = if i % 8 == 0 { 1 + (i % 2) } else { 1000 + i };
                let t = match rel {
                    0 => tuple![a, 50_000 + i],
                    _ => tuple![a, 60_000 + i, i],
                };
                (t, sign)
            })
            .collect();
        Delta::Flat(Relation::from_pairs(
            q.relations[rel].schema.clone(),
            tuples,
        ))
    };
    let cycle: Vec<(usize, Delta<i64>)> = vec![
        (0, batch(0, 1)),
        (1, batch(1, 1)),
        (1, batch(1, -1)),
        (0, batch(0, -1)),
    ];

    // Warm-up: two cycles grow every table, bucket and scratch buffer
    // (including the accumulator's regime-specific storage) to this
    // batch size's high-water mark.
    for _ in 0..2 {
        for (rel, d) in &cycle {
            engine.apply(*rel, d);
        }
    }

    ALLOCATIONS.store(0, Ordering::SeqCst);
    COUNTING_THREAD.with(|c| c.set(true));
    COUNTING.store(true, Ordering::SeqCst);
    for _ in 0..10 {
        for (rel, d) in &cycle {
            engine.apply(*rel, d);
        }
    }
    COUNTING.store(false, Ordering::SeqCst);
    let allocations = ALLOCATIONS.load(Ordering::SeqCst);

    assert_eq!(
        allocations, 0,
        "steady-state {batch_size}-tuple batch propagation must not \
         allocate (saw {allocations} allocations across 10 toggle cycles)"
    );
    assert_eq!(
        engine.result(),
        result_before,
        "toggles returned to baseline"
    );
}
