//! Schema-level property test: for *randomly generated queries*
//! (random relation schemas over a small variable pool, random free
//! variables) under random update streams, the full F-IVM pipeline —
//! auto-generated variable order → view tree → µ → incremental engine —
//! agrees with a naive oracle computed directly from the relational
//! algebra (join everything, then marginalize), independently of any
//! view-tree machinery.

use fivm::prelude::*;
use proptest::prelude::*;

/// A randomly shaped query: 2–4 relations, each over 2–3 of 5
/// variables, connected by construction (relation i shares a variable
/// with relation i−1).
fn query_strategy() -> impl Strategy<Value = QueryDef> {
    let names = ["A", "B", "C", "D", "E"];
    proptest::collection::vec(
        proptest::sample::subsequence(vec![0usize, 1, 2, 3, 4], 2..=3),
        2..=4,
    )
    .prop_filter_map("connected query", move |schemas| {
        // force connectivity: each relation must share a var with
        // the union of the previous ones
        let mut seen: Vec<usize> = schemas[0].clone();
        for s in &schemas[1..] {
            if !s.iter().any(|v| seen.contains(v)) {
                return None;
            }
            seen.extend(s.iter().copied());
        }
        let rels: Vec<(String, Vec<&str>)> = schemas
            .iter()
            .enumerate()
            .map(|(i, s)| {
                (
                    format!("R{i}"),
                    s.iter().map(|&v| names[v]).collect::<Vec<_>>(),
                )
            })
            .collect();
        let rel_refs: Vec<(&str, &[&str])> = rels
            .iter()
            .map(|(n, a)| (n.as_str(), a.as_slice()))
            .collect();
        // free vars: the first variable of the first relation
        let free = vec![rels[0].1[0]];
        Some(QueryDef::new(&rel_refs, &free))
    })
}

/// Naive oracle: join all relations, marginalize every bound variable.
fn naive_oracle(q: &QueryDef, db: &Database<i64>, lifts: &LiftingMap<i64>) -> Relation<i64> {
    let mut acc = db.relations[0].clone();
    for r in &db.relations[1..] {
        acc = acc.join(r);
    }
    let margins: Vec<(u32, Lifting<i64>)> = acc
        .schema()
        .iter()
        .filter(|v| !q.free.contains(**v))
        .map(|&v| (v, lifts.get(v)))
        .collect();
    let out = acc.marginalize_many(&margins);
    if out.schema().len() == q.free.len() && *out.schema() != q.free {
        out.reorder(&q.free)
    } else {
        out
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn random_queries_all_strategies_agree(
        q in query_strategy(),
        raw_updates in proptest::collection::vec(
            (0usize..4, proptest::collection::vec(0i64..3, 3), prop_oneof![3 => Just(1i64), 1 => Just(-1)]),
            1..20,
        ),
    ) {
        let vo = VariableOrder::auto(&q);
        prop_assert!(vo.validate(&q).is_ok());
        let tree = ViewTree::build(&q, &vo);
        let all: Vec<usize> = (0..q.relations.len()).collect();
        let lifts = LiftingMap::<i64>::new();
        let mut engine: IvmEngine<i64> =
            IvmEngine::new(q.clone(), tree.clone(), &all, lifts.clone());
        let mut recursive = RecursiveIvm::new(q.clone(), &all, lifts.clone());
        let mut first_order = FirstOrderIvm::new(q.clone(), tree, lifts.clone());
        let mut db = Database::empty(&q);

        for (rel_raw, vals, mult) in &raw_updates {
            let rel = rel_raw % q.relations.len();
            let arity = q.relations[rel].schema.len();
            let t = Tuple::new(vals.iter().take(arity).map(|&v| Value::Int(v)).collect());
            let d = Relation::from_pairs(q.relations[rel].schema.clone(), [(t, *mult)]);
            engine.apply(rel, &Delta::Flat(d.clone()));
            recursive.apply(rel, &Delta::Flat(d.clone()));
            first_order.apply(rel, &Delta::Flat(d.clone()));
            db.relations[rel].union_in_place(&d);

            let oracle = naive_oracle(&q, &db, &lifts);
            let canon = |r: &Relation<i64>| {
                let mut v = r.sorted();
                v.sort();
                v
            };
            prop_assert_eq!(canon(&engine.result()), canon(&oracle), "F-IVM vs naive");
            prop_assert_eq!(canon(&recursive.result()), canon(&oracle), "DBT vs naive");
            prop_assert_eq!(canon(first_order.result()), canon(&oracle), "1-IVM vs naive");
        }
    }

    /// The cost-based order search produces valid plans whose engines
    /// stay correct too (planner quality does not affect soundness).
    #[test]
    fn best_order_engines_agree(
        q in query_strategy(),
        raw_updates in proptest::collection::vec(
            (0usize..4, proptest::collection::vec(0i64..3, 3)),
            1..10,
        ),
    ) {
        prop_assume!(q.all_vars().len() <= 5);
        let (vo, _cost) = fivm::query::best_order(&q, &fivm::query::CostModel::new());
        prop_assert!(vo.validate(&q).is_ok());
        let tree = ViewTree::build(&q, &vo);
        let all: Vec<usize> = (0..q.relations.len()).collect();
        let lifts = LiftingMap::<i64>::new();
        let mut engine: IvmEngine<i64> = IvmEngine::new(q.clone(), tree, &all, lifts.clone());
        let mut db = Database::empty(&q);
        for (rel_raw, vals) in &raw_updates {
            let rel = rel_raw % q.relations.len();
            let arity = q.relations[rel].schema.len();
            let t = Tuple::new(vals.iter().take(arity).map(|&v| Value::Int(v)).collect());
            let d = Relation::from_pairs(q.relations[rel].schema.clone(), [(t, 1i64)]);
            engine.apply(rel, &Delta::Flat(d.clone()));
            db.relations[rel].union_in_place(&d);
        }
        let oracle = naive_oracle(&q, &db, &lifts);
        let canon = |r: &Relation<i64>| {
            let mut v = r.sorted();
            v.sort();
            v
        };
        prop_assert_eq!(canon(&engine.result()), canon(&oracle));
    }
}
