//! End-to-end checks of the paper’s worked examples through the public
//! facade: Example 1.1 (the running query), Example 2.1 (operators),
//! Example 4.1 (delta propagation), Example 4.2 (materialization),
//! Example 6.3 (cofactor payloads), Examples 6.5/6.6 (relational
//! payloads) and Figure 2 (view contents).

use fivm::prelude::*;
use fivm::tuple;

fn fig2_db<R: Ring>(q: &QueryDef, one: R) -> Database<R> {
    let mut db = Database::empty(q);
    for (a, b) in [(1, 1), (1, 2), (2, 3), (3, 4)] {
        db.relations[0].insert(tuple![a, b], one.clone());
    }
    for (a, c, e) in [(1, 1, 1), (1, 1, 2), (1, 2, 3), (2, 2, 4)] {
        db.relations[1].insert(tuple![a, c, e], one.clone());
    }
    for (c, d) in [(1, 1), (2, 2), (2, 3), (3, 4)] {
        db.relations[2].insert(tuple![c, d], one.clone());
    }
    db
}

/// Figure 1 / Example 1.1: SUM(R.B * T.D * S.E) group by (A, C),
/// maintained under updates to S with the views of Figure 1.
#[test]
fn example_1_1_group_by_sum() {
    let q = QueryDef::example_rst(&["A", "C"]);
    let vo = VariableOrder::parse("A - { C - { B, D, E } }", &q.catalog);
    let tree = ViewTree::build(&q, &vo);
    let mut lifts: LiftingMap<i64> = LiftingMap::new();
    for v in ["B", "D", "E"] {
        lifts.set(
            q.catalog.lookup(v).unwrap(),
            Lifting::from_fn(|x: &Value| x.as_int().unwrap()),
        );
    }
    let mut engine: IvmEngine<i64> =
        IvmEngine::new(q.clone(), tree.clone(), &[0, 1, 2], lifts.clone());
    let db = fig2_db(&q, 1i64);
    engine.load(&db);
    let expected = eval_tree(&tree, &db, &lifts);
    assert_eq!(engine.result(), expected);

    // δS with an insert and a delete, as in the paper’s trigger example
    let ds = Relation::from_pairs(
        q.relations[1].schema.clone(),
        [(tuple![1, 1, 9], 1i64), (tuple![1, 2, 3], -1)],
    );
    engine.apply(1, &Delta::Flat(ds.clone()));
    let mut db2 = db;
    db2.relations[1].union_in_place(&ds);
    assert_eq!(engine.result(), eval_tree(&tree, &db2, &lifts));
}

/// Example 4.1: the delta δT = {(c1,d1)→−1, (c2,d2)→3} adds 5 to the
/// count of Figure 2d.
#[test]
fn example_4_1_count_delta() {
    let q = QueryDef::example_rst(&[]);
    let vo = VariableOrder::parse("A - { B, C - { D, E } }", &q.catalog);
    let tree = ViewTree::build(&q, &vo);
    let mut engine: IvmEngine<i64> = IvmEngine::new(q.clone(), tree, &[0, 1, 2], LiftingMap::new());
    engine.load(&fig2_db(&q, 1i64));
    assert_eq!(engine.result().payload(&Tuple::unit()), 10); // Figure 2d
    let dt = Relation::from_pairs(
        q.relations[2].schema.clone(),
        [(tuple![1, 1], -1i64), (tuple![2, 2], 3)],
    );
    engine.apply(2, &Delta::Flat(dt));
    assert_eq!(engine.result().payload(&Tuple::unit()), 15); // +5 (paper)
}

/// Example 4.2: materialization under U = {T} stores exactly the root,
/// V@B_R and V@E_S.
#[test]
fn example_4_2_materialization() {
    let q = QueryDef::example_rst(&[]);
    let vo = VariableOrder::parse("A - { B, C - { D, E } }", &q.catalog);
    let tree = ViewTree::build(&q, &vo);
    let ti = q.relation_index("T").unwrap();
    let plan = materialization(&tree, 1u64 << ti);
    assert_eq!(plan.stored_count(), 3);
    assert!(plan.store[tree.root]);
}

/// §7 view counts: the Retailer variable order yields 9 views (five
/// over input relations, three intermediate, one root); Housing yields
/// 7 (six relation views + root) — and DBT-RING (the recursive scheme)
/// strictly more on Retailer.
#[test]
fn section_7_view_counts() {
    let retailer_q = fivm::data::retailer::query();
    let retailer_vo = fivm::data::retailer::variable_order(&retailer_q);
    let rtree = ViewTree::build(&retailer_q, &retailer_vo);
    assert_eq!(rtree.inner_count(), 9, "Retailer F-IVM views (§7)");

    let housing_q = fivm::data::housing::query();
    let housing_vo = fivm::data::housing::variable_order(&housing_q);
    let htree = ViewTree::build(&housing_q, &housing_vo);
    assert_eq!(htree.inner_count(), 7, "Housing F-IVM views (§7)");

    let all: Vec<usize> = (0..retailer_q.relations.len()).collect();
    let dbt_ring: RecursiveIvm<Cofactor> = RecursiveIvm::new(
        retailer_q.clone(),
        &all,
        CofactorSpec::over_all_vars(&retailer_q).liftings(),
    );
    assert!(
        dbt_ring.stored_view_count() > rtree.inner_count(),
        "DBT-RING uses more views than F-IVM ({} vs {})",
        dbt_ring.stored_view_count(),
        rtree.inner_count()
    );

    // DBT / 1-IVM with scalar payloads maintain one query per aggregate:
    // 990 aggregates for the 43-variable Retailer schema (§7).
    let spec = CofactorSpec::over_all_vars(&retailer_q);
    assert_eq!(spec.aggregate_count(), 990);
    let hspec = CofactorSpec::over_all_vars(&housing_q);
    assert_eq!(hspec.aggregate_count(), 406, "Housing: 406 aggregates (§7)");
}

/// Example 6.3: the cofactor payload of V@C_ST[a2] from the paper,
/// computed through the engine over the Figure 2 database.
#[test]
fn example_6_3_cofactor_via_engine() {
    let q = QueryDef::example_rst(&[]);
    let vo = VariableOrder::parse("A - { B, C - { D, E } }", &q.catalog);
    let tree = ViewTree::build(&q, &vo);
    let spec = CofactorSpec::over_all_vars(&q);
    let mut engine: IvmEngine<Cofactor> =
        IvmEngine::new(q.clone(), tree, &[0, 1, 2], spec.liftings());
    engine.load(&fig2_db(&q, Cofactor::one()));
    let (c, s, qm) = spec.extract(&engine.result());
    // Naive check: enumerate the join (Figure 2e listing with E) and
    // accumulate statistics over (A,B,C,D,E).
    // rows in the spec’s variable index order (first appearance:
    // A, B, C, E, D)
    let order: Vec<usize> = ["A", "B", "C", "E", "D"]
        .iter()
        .map(|n| spec.index_of(q.catalog.lookup(n).unwrap()).unwrap() as usize)
        .collect();
    let rows: Vec<[f64; 5]> = {
        let mut rows = Vec::new();
        let r = [(1, 1), (1, 2), (2, 3), (3, 4)];
        let s_ = [(1, 1, 1), (1, 1, 2), (1, 2, 3), (2, 2, 4)];
        let t = [(1, 1), (2, 2), (2, 3), (3, 4)];
        for &(ra, rb) in &r {
            for &(sa, sc, se) in &s_ {
                for &(tc, td) in &t {
                    if ra == sa && sc == tc {
                        let mut row = [0.0; 5];
                        row[order[0]] = ra as f64;
                        row[order[1]] = rb as f64;
                        row[order[2]] = sc as f64;
                        row[order[3]] = se as f64;
                        row[order[4]] = td as f64;
                        rows.push(row);
                    }
                }
            }
        }
        rows
    };
    assert_eq!(c, rows.len() as i64);
    let m = 5;
    for i in 0..m {
        let expect: f64 = rows.iter().map(|r| r[i]).sum();
        assert!((s[i] - expect).abs() < 1e-9, "s[{i}]");
        for j in 0..m {
            let expect: f64 = rows.iter().map(|r| r[i] * r[j]).sum();
            assert!((qm[i * m + j] - expect).abs() < 1e-9, "Q[{i},{j}]");
        }
    }
}

/// Matrix chain (Example 6.1): the generic engine with a factored
/// rank-1 update maintains the product; the delta stays factored until
/// the root.
#[test]
fn example_6_1_rank1_update() {
    use fivm::data::matrices;
    let n = 16;
    let q = matrices::chain_query(3);
    let vo = VariableOrder::parse("X1 - X4 - X3 - X2", &q.catalog);
    let tree = ViewTree::build(&q, &vo);
    let mut engine: IvmEngine<f64> =
        IvmEngine::new(q.clone(), tree.clone(), &[1], LiftingMap::new());
    let chain = matrices::random_chain(3, n, 5);
    let mut db = Database::<f64>::empty(&q);
    for (i, d) in chain.iter().enumerate() {
        db.relations[i] = matrices::matrix_relation(d, n, q.relations[i].schema.clone());
    }
    engine.load(&db);

    let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(11);
    let (u, v) = matrices::one_row_update(n, 3, &mut rng);
    let x2 = Schema::new(vec![q.catalog.lookup("X2").unwrap()]);
    let x3 = Schema::new(vec![q.catalog.lookup("X3").unwrap()]);
    let du = matrices::vector_relation(&u, x2);
    let dv = matrices::vector_relation(&v, x3);
    let factored = Delta::factored(vec![du, dv]);
    engine.apply(1, &factored);

    // oracle: dense maintenance
    let dense: Vec<fivm::linalg::Matrix> = chain
        .iter()
        .map(|d| fivm::linalg::Matrix::from_fn(n, n, |i, j| d[i * n + j]))
        .collect();
    let mut oracle = fivm::linalg::DenseChainIvm::new(dense);
    oracle.apply_rank1(1, &u, &v);
    for (t, p) in engine.result().sorted() {
        let (i, j) = (
            t.get(0).as_int().unwrap() as usize,
            t.get(1).as_int().unwrap() as usize,
        );
        assert!(
            (p - oracle.product().get(i, j)).abs() < 1e-9,
            "cell ({i},{j})"
        );
    }
}
