//! Stress tests: long mixed insert/delete streams with heavy key churn
//! (the same keys repeatedly inserted and deleted), batch updates that
//! mix signs within one delta relation, and interleaved factored
//! updates — exercising index maintenance, zero-payload erasure and the
//! return-to-empty invariant at a scale the unit tests do not reach.

use fivm::prelude::*;
use fivm::tuple;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn setup() -> (QueryDef, ViewTree, LiftingMap<i64>) {
    let q = QueryDef::example_rst(&["A"]);
    let vo = VariableOrder::parse("A - { B, C - { D, E } }", &q.catalog);
    let tree = ViewTree::build(&q, &vo);
    (q, tree, LiftingMap::new())
}

#[test]
fn thousand_update_churn_stays_consistent() {
    let (q, tree, lifts) = setup();
    let mut engine: IvmEngine<i64> =
        IvmEngine::new(q.clone(), tree.clone(), &[0, 1, 2], lifts.clone());
    let mut db = Database::empty(&q);
    let mut rng = SmallRng::seed_from_u64(2024);
    // small key space → constant churn on the same keys
    for step in 0..1000 {
        let rel = rng.gen_range(0..3usize);
        let arity = q.relations[rel].schema.len();
        let vals: Vec<Value> = (0..arity)
            .map(|_| Value::Int(rng.gen_range(0..3)))
            .collect();
        let t = Tuple::new(vals);
        // deletes only of existing tuples, otherwise insert
        let existing = db.relations[rel].payload(&t);
        let mult = if existing > 0 && rng.gen_bool(0.45) {
            -1
        } else {
            1
        };
        let d = Relation::from_pairs(q.relations[rel].schema.clone(), [(t, mult)]);
        engine.apply(rel, &Delta::Flat(d.clone()));
        db.relations[rel].union_in_place(&d);
        if step % 100 == 99 {
            assert_eq!(
                engine.result(),
                eval_tree(&tree, &db, &lifts),
                "diverged at step {step}"
            );
        }
    }
    // tear everything down
    for ri in 0..3 {
        let neg = db.relations[ri].neg();
        if !neg.is_empty() {
            engine.apply(ri, &Delta::Flat(neg));
        }
    }
    assert!(engine.result().is_empty());
    assert_eq!(engine.total_entries(), 0, "all views empty after teardown");
}

#[test]
fn mixed_sign_batches() {
    let (q, tree, lifts) = setup();
    let mut engine: IvmEngine<i64> =
        IvmEngine::new(q.clone(), tree.clone(), &[0, 1, 2], lifts.clone());
    let mut db = Database::empty(&q);
    let mut rng = SmallRng::seed_from_u64(7);
    for round in 0..50 {
        let rel = round % 3;
        let schema = q.relations[rel].schema.clone();
        // one batch mixing inserts, deletes and net-zero keys
        let mut batch = Relation::new(schema.clone());
        for _ in 0..20 {
            let arity = schema.len();
            let vals: Vec<Value> = (0..arity)
                .map(|_| Value::Int(rng.gen_range(0..4)))
                .collect();
            let m: i64 = *[1, 1, 2, -1].get(rng.gen_range(0..4)).unwrap();
            batch.insert(Tuple::new(vals), m);
        }
        // clamp so the base stays non-negative
        let clamped = Relation::from_pairs(
            schema,
            batch.iter().map(|(t, &m)| {
                let cur: i64 = db.relations[rel].payload(t);
                (t.clone(), m.max(-cur))
            }),
        );
        engine.apply(rel, &Delta::Flat(clamped.clone()));
        db.relations[rel].union_in_place(&clamped);
        assert_eq!(
            engine.result(),
            eval_tree(&tree, &db, &lifts),
            "round {round}"
        );
    }
}

#[test]
fn factored_updates_interleaved_with_flat() {
    let (q, tree, lifts) = setup();
    let mut engine: IvmEngine<i64> =
        IvmEngine::new(q.clone(), tree.clone(), &[0, 1, 2], lifts.clone());
    let mut db = Database::empty(&q);
    let mut rng = SmallRng::seed_from_u64(99);
    let a = q.catalog.lookup("A").unwrap();
    let c = q.catalog.lookup("C").unwrap();
    let e = q.catalog.lookup("E").unwrap();
    for round in 0..40 {
        if round % 4 == 3 {
            // factored rank-1 update to S: fa[A] ⊗ fce[C,E]
            let fa = Relation::from_pairs(
                Schema::new(vec![a]),
                (0..2).map(|_| (Tuple::single(Value::Int(rng.gen_range(0..3))), 1i64)),
            );
            let fce = Relation::from_pairs(
                Schema::new(vec![c, e]),
                (0..2).map(|_| {
                    (
                        Tuple::pair(rng.gen_range(0..3i64), rng.gen_range(0..3i64)),
                        1i64,
                    )
                }),
            );
            if fa.is_empty() || fce.is_empty() {
                continue;
            }
            let factored = Delta::factored(vec![fa, fce]);
            db.relations[1].union_in_place(&factored.flatten().reorder(&q.relations[1].schema));
            engine.apply(1, &factored);
        } else {
            let rel = round % 3;
            let arity = q.relations[rel].schema.len();
            let vals: Vec<Value> = (0..arity)
                .map(|_| Value::Int(rng.gen_range(0..3)))
                .collect();
            let d =
                Relation::from_pairs(q.relations[rel].schema.clone(), [(Tuple::new(vals), 1i64)]);
            engine.apply(rel, &Delta::Flat(d.clone()));
            db.relations[rel].union_in_place(&d);
        }
        assert_eq!(
            engine.result(),
            eval_tree(&tree, &db, &lifts),
            "round {round}"
        );
    }
}

/// Adversarial secondary-index churn: large batches of ever-fresh join
/// keys inserted and deleted, round after round. Each round leaves
/// emptied index buckets behind; without the high-water-mark sweep the
/// retained-bucket footprint grows linearly with the number of rounds
/// (~`rounds × batch` buckets). The sweep must keep it proportional to
/// the per-round live peak — and the engine must stay correct while
/// sweeping.
#[test]
fn adversarial_key_churn_keeps_index_footprint_bounded() {
    let (q, tree, lifts) = setup();
    let mut engine: IvmEngine<i64> =
        IvmEngine::new(q.clone(), tree.clone(), &[0, 1, 2], lifts.clone());
    let mut db = Database::empty(&q);
    let apply = |engine: &mut IvmEngine<i64>,
                 db: &mut Database<i64>,
                 rel: usize,
                 pairs: Vec<(Tuple, i64)>| {
        let d = Relation::from_pairs(q.relations[rel].schema.clone(), pairs);
        engine.apply(rel, &Delta::Flat(d.clone()));
        db.relations[rel].union_in_place(&d);
    };

    // Resident base so propagation does real join work.
    apply(
        &mut engine,
        &mut db,
        0,
        (0..8).map(|i| (tuple![i, i], 1i64)).collect(),
    );
    apply(
        &mut engine,
        &mut db,
        2,
        (0..8).map(|i| (tuple![i, i], 1i64)).collect(),
    );

    let rounds = 40usize;
    let batch = 256usize;
    for round in 0..rounds {
        // Fresh C values every round: S-tuples whose [A, C] view keys
        // (and [C] index buckets) have never been seen before.
        let fresh: Vec<(Tuple, i64)> = (0..batch)
            .map(|i| {
                let c = (round * batch + i) as i64 + 1_000;
                (tuple![(i % 8) as i64, c, c], 1i64)
            })
            .collect();
        let negated: Vec<(Tuple, i64)> = fresh.iter().map(|(t, m)| (t.clone(), -m)).collect();
        apply(&mut engine, &mut db, 1, fresh);
        apply(&mut engine, &mut db, 1, negated);
        if round % 10 == 9 {
            assert_eq!(
                engine.result(),
                eval_tree(&tree, &db, &lifts),
                "diverged at round {round}"
            );
        }
    }

    // Unswept, the footprint would be ~rounds × batch ≈ 10 240 retained
    // buckets; the high-water budget is 2 × peak-live + a small floor.
    let footprint = engine.index_footprint();
    assert!(
        footprint <= 2 * (batch + 16) + 64,
        "retained index buckets not swept: footprint {footprint} after \
         {rounds} rounds of {batch}-key churn"
    );

    // Sweeping kept the engine correct: fresh updates still probe fine.
    apply(&mut engine, &mut db, 1, vec![(tuple![1, 1, 1], 1i64)]);
    assert_eq!(engine.result(), eval_tree(&tree, &db, &lifts));
}

/// Probe-chain health across repeated high-water sweeps: each sweep
/// round runs `TupleMap::retain` under the hood, and before the
/// compacting-rehash fix its tombstones accumulated until the next
/// insert-triggered rehash — probe chains degenerated toward
/// O(capacity) between rehashes. Bounded `max_probe_run` across many
/// sweep rounds is the regression guard.
#[test]
fn sweep_rounds_keep_probe_runs_bounded() {
    let (q, tree, lifts) = setup();
    let mut engine: IvmEngine<i64> =
        IvmEngine::new(q.clone(), tree.clone(), &[0, 1, 2], lifts.clone());
    let mut db = Database::empty(&q);
    let apply = |engine: &mut IvmEngine<i64>,
                 db: &mut Database<i64>,
                 rel: usize,
                 pairs: Vec<(Tuple, i64)>| {
        let d = Relation::from_pairs(q.relations[rel].schema.clone(), pairs);
        engine.apply(rel, &Delta::Flat(d.clone()));
        db.relations[rel].union_in_place(&d);
    };
    apply(
        &mut engine,
        &mut db,
        0,
        (0..8).map(|i| (tuple![i, i], 1i64)).collect(),
    );
    apply(
        &mut engine,
        &mut db,
        2,
        (0..8).map(|i| (tuple![i, i], 1i64)).collect(),
    );

    let batch = 256usize;
    for round in 0..40usize {
        let fresh: Vec<(Tuple, i64)> = (0..batch)
            .map(|i| {
                let c = (round * batch + i) as i64 + 1_000;
                (tuple![(i % 8) as i64, c, c], 1i64)
            })
            .collect();
        let negated: Vec<(Tuple, i64)> = fresh.iter().map(|(t, m)| (t.clone(), -m)).collect();
        apply(&mut engine, &mut db, 1, fresh);
        apply(&mut engine, &mut db, 1, negated);
        // The churned tables hold ≤ ~600 live entries at ≤ 7/8 load;
        // healthy linear-probe runs there are short. Tombstone piles
        // left by un-compacted sweeps produced runs in the hundreds.
        let run = engine.max_probe_run();
        assert!(
            run <= 64,
            "round {round}: max probe run {run} degenerated (sweep left tombstones?)"
        );
    }
    assert_eq!(engine.result(), eval_tree(&tree, &db, &lifts));
}

/// `load` on a dirty engine resets the index high-water sweep budgets
/// (PR 2's live-bucket counters) along with the indicator support
/// counts: after reloading a small database over an engine whose
/// previous life had a large bucket peak, fresh-key churn must be
/// swept against the *new* budget — and the engine must stay correct.
#[test]
fn load_then_churn_uses_fresh_sweep_budgets() {
    let (q, tree, lifts) = setup();
    let mut engine: IvmEngine<i64> =
        IvmEngine::new(q.clone(), tree.clone(), &[0, 1, 2], lifts.clone());

    // Inflate the secondary-index high-water marks: 4096 concurrently
    // live S-tuples with distinct join keys.
    let big: Vec<(Tuple, i64)> = (0..4096i64).map(|c| (tuple![c % 8, c, c], 1)).collect();
    let d = Relation::from_pairs(q.relations[1].schema.clone(), big);
    engine.apply(1, &Delta::Flat(d));
    assert!(engine.index_footprint() > 2048, "peak not reached");

    // Reload a tiny database.
    let mut db = Database::empty(&q);
    for i in 0..8i64 {
        db.relations[0].insert(tuple![i, i], 1);
        db.relations[1].insert(tuple![i, i, i], 1);
        db.relations[2].insert(tuple![i, i], 1);
    }
    engine.load(&db);
    assert_eq!(engine.result(), eval_tree(&tree, &db, &lifts));

    // Fresh-key churn after the reload: with stale (pre-load) budgets
    // of 2 × 4096, none of these emptied buckets would ever be swept.
    let batch = 64usize;
    for round in 0..40usize {
        let fresh: Vec<(Tuple, i64)> = (0..batch)
            .map(|i| {
                let c = (round * batch + i) as i64 + 100_000;
                (tuple![(i % 8) as i64, c, c], 1i64)
            })
            .collect();
        let negated: Vec<(Tuple, i64)> = fresh.iter().map(|(t, m)| (t.clone(), -m)).collect();
        let df = Relation::from_pairs(q.relations[1].schema.clone(), fresh);
        let dn = Relation::from_pairs(q.relations[1].schema.clone(), negated);
        engine.apply(1, &Delta::Flat(df.clone()));
        engine.apply(1, &Delta::Flat(dn.clone()));
        db.relations[1].union_in_place(&df);
        db.relations[1].union_in_place(&dn);
    }
    let footprint = engine.index_footprint();
    let budget = 2 * (8 + batch) + 64;
    assert!(
        footprint <= budget,
        "stale sweep budget survived load: footprint {footprint} > {budget}"
    );
    assert_eq!(engine.result(), eval_tree(&tree, &db, &lifts));
}

/// Memory accounting tracks churn: bytes after full deletion return to
/// (near) the empty baseline — no leaked index entries.
#[test]
fn memory_returns_after_teardown() {
    let (q, tree, lifts) = setup();
    let mut engine: IvmEngine<i64> = IvmEngine::new(q.clone(), tree, &[0, 1, 2], lifts);
    let baseline = engine.approx_bytes();
    let mut inserted: Vec<(usize, Tuple)> = Vec::new();
    let mut rng = SmallRng::seed_from_u64(5);
    for _ in 0..200 {
        let rel = rng.gen_range(0..3usize);
        let arity = q.relations[rel].schema.len();
        let vals: Vec<Value> = (0..arity)
            .map(|_| Value::Int(rng.gen_range(0..10)))
            .collect();
        let t = Tuple::new(vals);
        let d = Relation::from_pairs(q.relations[rel].schema.clone(), [(t.clone(), 1i64)]);
        engine.apply(rel, &Delta::Flat(d));
        inserted.push((rel, t));
    }
    assert!(engine.approx_bytes() > baseline);
    for (rel, t) in inserted {
        let d = Relation::from_pairs(q.relations[rel].schema.clone(), [(t, -1i64)]);
        engine.apply(rel, &Delta::Flat(d));
    }
    assert_eq!(engine.total_entries(), 0);
    assert_eq!(engine.approx_bytes(), baseline);
}
