//! Batch/single-tuple equivalence for the flat-batch fast path:
//! applying one N-tuple batch must equal applying its N tuples
//! individually, and equal applying any partition of it into
//! sub-batches — and all of those must equal the general
//! factor-propagation path ([`IvmEngine::set_fast_path`]`(false)`)
//! and the parallel fan-out (`set_workers(4)` with a forced-low
//! parallel threshold).
//!
//! N is driven across every merge-regime boundary of the batch path:
//! the old 32-tuple fast-path gate (now the linear-merge bound) and
//! the 1024-pair hash-merge threshold. Agreement is asserted not just
//! on the root result but on **every materialized view**, so a
//! divergence is caught at the node where it first appears.

use fivm::prelude::*;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn star_setup() -> (QueryDef, ViewTree, LiftingMap<i64>) {
    let q = QueryDef::example_rst(&["A"]);
    let vo = VariableOrder::parse("A - { B, C - { D, E } }", &q.catalog);
    let tree = ViewTree::build(&q, &vo);
    let mut lifts = LiftingMap::new();
    lifts.set(
        q.catalog.lookup("B").unwrap(),
        fivm::core::lifting::int_identity(),
    );
    (q, tree, lifts)
}

fn triangle_setup() -> (QueryDef, ViewTree, LiftingMap<i64>) {
    let q = QueryDef::triangle();
    let vo = VariableOrder::parse("A - B - C", &q.catalog);
    let mut tree = ViewTree::build(&q, &vo);
    add_indicators(&mut tree, &q);
    (q, tree, LiftingMap::new())
}

/// Random mixed-sign batch over a small key domain (so batches contain
/// duplicate keys, cancellations, and join partners).
fn random_pairs(q: &QueryDef, rel: usize, n: usize, seed: u64) -> Vec<(Tuple, i64)> {
    random_pairs_sym(q, rel, n, seed, &[])
}

/// [`random_pairs`] with symbol-keyed columns: every column holding a
/// variable in `sym_vars` draws an interned string (`"k00"`–`"k31"`,
/// interned through the query catalog; the same skewed 32-value domain
/// as the integer columns) instead of an integer.
fn random_pairs_sym(
    q: &QueryDef,
    rel: usize,
    n: usize,
    seed: u64,
    sym_vars: &[VarId],
) -> Vec<(Tuple, i64)> {
    let schema: Vec<VarId> = q.relations[rel].schema.iter().copied().collect();
    // Pre-intern the shared 32-value domain once per call, not per row.
    let domain: Vec<Value> = (0..32)
        .map(|code| q.catalog.sym(&format!("k{code:02}")))
        .collect();
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let vals: Vec<Value> = schema
                .iter()
                .map(|v| {
                    let code = rng.gen_range(0..32);
                    if sym_vars.contains(v) {
                        domain[code as usize].clone()
                    } else {
                        Value::Int(code)
                    }
                })
                .collect();
            let m = *[1i64, 1, 2, -1].get(rng.gen_range(0..4)).unwrap();
            (Tuple::new(vals), m)
        })
        .collect()
}

/// Resident working set so sibling joins have partners from the start.
fn warm(q: &QueryDef, engines: &mut [IvmEngine<i64>], sym_vars: &[VarId]) {
    for rel in 0..q.relations.len() {
        let pairs = random_pairs_sym(q, rel, 64, 0xBA5E + rel as u64, sym_vars);
        let d = Relation::from_pairs(q.relations[rel].schema.clone(), pairs);
        for e in engines.iter_mut() {
            e.apply(rel, &Delta::Flat(d.clone()));
        }
    }
}

/// Every materialized view of every engine must agree with the first
/// engine's.
fn assert_all_views_agree(engines: &[IvmEngine<i64>], context: &str) -> Result<(), TestCaseError> {
    let reference = &engines[0];
    let nodes = reference.tree().nodes.len();
    for (i, e) in engines.iter().enumerate().skip(1) {
        for node in 0..nodes {
            let a = reference.view_relation(node);
            let b = e.view_relation(node);
            prop_assert_eq!(
                &a,
                &b,
                "{}: engine {} diverged from engine 0 at node {}",
                context,
                i,
                node
            );
        }
        prop_assert_eq!(
            &reference.result(),
            &e.result(),
            "{}: engine {} result diverged",
            context,
            i
        );
    }
    Ok(())
}

/// Apply `pairs` to `rel` five ways — one batch, singles, random
/// partition, general path, parallel fast path — and assert
/// full-state agreement.
#[allow(clippy::too_many_arguments)]
fn check_equivalence(
    q: &QueryDef,
    tree: &ViewTree,
    lifts: &LiftingMap<i64>,
    rel: usize,
    pairs: &[(Tuple, i64)],
    partition_seed: u64,
    sym_vars: &[VarId],
    context: &str,
) -> Result<(), TestCaseError> {
    let all: Vec<usize> = (0..q.relations.len()).collect();
    let mut engines: Vec<IvmEngine<i64>> = (0..5)
        .map(|_| IvmEngine::new(q.clone(), tree.clone(), &all, lifts.clone()))
        .collect();
    engines[3].set_fast_path(false);
    // Engine 4: the parallel fan-out, forced onto every batch-scale
    // step (4 workers, threshold far below the sweep sizes).
    engines[4].set_workers(4);
    engines[4].set_parallel_threshold(16);
    warm(q, &mut engines, sym_vars);
    let schema = q.relations[rel].schema.clone();

    // Engine 0: the whole batch at once.
    let full = Relation::from_pairs(schema.clone(), pairs.iter().cloned());
    engines[0].apply(rel, &Delta::Flat(full.clone()));

    // Engine 1: one tuple at a time.
    for (t, m) in pairs {
        let d = Relation::from_pairs(schema.clone(), [(t.clone(), *m)]);
        engines[1].apply(rel, &Delta::Flat(d));
    }

    // Engine 2: a random partition into sub-batches.
    let mut rng = SmallRng::seed_from_u64(partition_seed);
    let mut start = 0;
    while start < pairs.len() {
        let end = (start + rng.gen_range(1..=pairs.len() - start)).min(pairs.len());
        let d = Relation::from_pairs(schema.clone(), pairs[start..end].iter().cloned());
        engines[2].apply(rel, &Delta::Flat(d));
        start = end;
    }

    // Engine 3: the whole batch through the general path.
    engines[3].apply(rel, &Delta::Flat(full.clone()));

    // Engine 4: the whole batch through the parallel fast path.
    engines[4].apply(rel, &Delta::Flat(full));

    assert_all_views_agree(&engines, context)
}

/// Deterministic sweep across the regime boundaries: the old 32-tuple
/// gate (linear-merge bound) and the 1024-pair hash threshold.
#[test]
fn batch_sizes_straddling_thresholds_are_equivalent() {
    let (q, tree, lifts) = star_setup();
    for n in [1usize, 31, 32, 33, 100, 1023, 1024, 1025, 2048] {
        for rel in 0..3 {
            let pairs = random_pairs(&q, rel, n, n as u64 * 31 + rel as u64);
            check_equivalence(
                &q,
                &tree,
                &lifts,
                rel,
                &pairs,
                n as u64,
                &[],
                &format!("star N={n} rel={rel}"),
            )
            .unwrap_or_else(|e| panic!("{e}"));
        }
    }
}

/// The same sweep over the cyclic triangle query with indicator
/// projections (support counting must also be batch-size invariant).
#[test]
fn triangle_batches_straddling_thresholds_are_equivalent() {
    let (q, tree, lifts) = triangle_setup();
    for n in [1usize, 32, 33, 64, 512, 1025] {
        let pairs = random_pairs(&q, 0, n, n as u64 * 17);
        check_equivalence(
            &q,
            &tree,
            &lifts,
            0,
            &pairs,
            n as u64,
            &[],
            &format!("triangle N={n}"),
        )
        .unwrap_or_else(|e| panic!("{e}"));
    }
}

/// The threshold sweep with **string join keys**: A (the free group-by
/// variable) and C (the inner join variable) carry interned symbols
/// from the same skewed 32-value domain, so duplicate keys,
/// cancellations and join partners all land on symbol equality/hash,
/// across all five application strategies including the parallel
/// fan-out.
#[test]
fn symbol_keyed_batches_straddling_thresholds_are_equivalent() {
    let (q, tree, lifts) = star_setup();
    let sym_vars: Vec<VarId> = ["A", "C"]
        .iter()
        .map(|n| q.catalog.lookup(n).unwrap())
        .collect();
    for n in [1usize, 32, 33, 100, 1024, 1025, 2048] {
        for rel in 0..3 {
            let pairs = random_pairs_sym(&q, rel, n, n as u64 * 13 + rel as u64, &sym_vars);
            check_equivalence(
                &q,
                &tree,
                &lifts,
                rel,
                &pairs,
                n as u64,
                &sym_vars,
                &format!("sym star N={n} rel={rel}"),
            )
            .unwrap_or_else(|e| panic!("{e}"));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random sizes, contents, relations, and partitions.
    #[test]
    fn random_batches_are_partition_invariant(
        n in 1usize..=2048,
        rel in 0usize..3,
        seed in 0u64..u64::MAX,
        partition_seed in 0u64..u64::MAX,
    ) {
        let (q, tree, lifts) = star_setup();
        let pairs = random_pairs(&q, rel, n, seed);
        check_equivalence(&q, &tree, &lifts, rel, &pairs, partition_seed, &[], "random star")?;
    }
}
