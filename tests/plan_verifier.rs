//! Static plan-IR verification at the facade level: every plan the
//! engine compiles for the paper's query shapes (star COUNT, star
//! group-by with liftings, triangle with indicator views, sequential
//! and parallel variants, flat and factored paths) must come back from
//! [`IvmEngine::verify_plans`] with zero findings — and hand-broken
//! IRs must not. The unit tests inside `fivm-check` cover each rule in
//! isolation; this suite pins down the end-to-end contract that the
//! *real* compiled plans typecheck, and that the CI `analysis` gate
//! actually fails when a plan is wrong.

use fivm::prelude::*;
use fivm_check::plan_ir::{
    verify_fast_plan, verify_partition, FastPlanIr, FastStepIr, PlanCtx, SiblingIr, FULL_KEY,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn assert_clean(engine: &IvmEngine<i64>, context: &str) {
    let findings = engine.verify_plans();
    assert!(
        findings.is_empty(),
        "{context}: plan verifier found defects:\n{}",
        findings
            .iter()
            .map(|f| format!("  {f}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// Drive `updates` small flat deltas into every relation so the lazy
/// paths (secondary indexes, parallel fan-out) all compile.
fn drive(engine: &mut IvmEngine<i64>, q: &QueryDef, updates: usize, seed: u64) {
    let mut rng = SmallRng::seed_from_u64(seed);
    for _ in 0..updates {
        for rel in 0..q.relations.len() {
            let schema = q.relations[rel].schema.clone();
            let vals: Vec<Value> = schema
                .iter()
                .map(|_| Value::Int(rng.gen_range(0..8)))
                .collect();
            let d = Relation::from_pairs(schema, [(Tuple::new(vals), 1i64)]);
            engine.apply(rel, &Delta::Flat(d));
        }
    }
}

#[test]
fn star_count_plans_verify_clean() {
    let q = QueryDef::example_rst(&[]);
    let vo = VariableOrder::parse("A - { B, C - { D, E } }", &q.catalog);
    let tree = ViewTree::build(&q, &vo);
    let all: Vec<usize> = (0..q.relations.len()).collect();
    let mut engine = IvmEngine::new(q.clone(), tree, &all, LiftingMap::new());
    assert_clean(&engine, "star COUNT, freshly compiled");
    drive(&mut engine, &q, 16, 1);
    assert_clean(&engine, "star COUNT, after updates");
}

#[test]
fn star_group_by_with_liftings_plans_verify_clean() {
    let q = QueryDef::example_rst(&["A", "C"]);
    let vo = VariableOrder::parse("A - { B, C - { D, E } }", &q.catalog);
    let tree = ViewTree::build(&q, &vo);
    let mut lifts = LiftingMap::new();
    lifts.set(
        q.catalog.lookup("B").unwrap(),
        fivm::core::lifting::int_identity(),
    );
    lifts.set(
        q.catalog.lookup("E").unwrap(),
        fivm::core::lifting::int_identity(),
    );
    let all: Vec<usize> = (0..q.relations.len()).collect();
    let mut engine = IvmEngine::new(q.clone(), tree, &all, lifts);
    drive(&mut engine, &q, 16, 2);
    assert_clean(&engine, "star group-by SUM(B*E)");
}

#[test]
fn triangle_with_indicators_plans_verify_clean() {
    let q = QueryDef::triangle();
    let vo = VariableOrder::parse("A - B - C", &q.catalog);
    let mut tree = ViewTree::build(&q, &vo);
    add_indicators(&mut tree, &q);
    let all: Vec<usize> = (0..q.relations.len()).collect();
    let mut engine = IvmEngine::new(q.clone(), tree, &all, LiftingMap::new());
    drive(&mut engine, &q, 16, 3);
    assert_clean(&engine, "triangle with indicator views");
}

#[test]
fn parallel_engine_partitions_verify_clean() {
    let q = QueryDef::example_rst(&[]);
    let vo = VariableOrder::parse("A - { B, C - { D, E } }", &q.catalog);
    let tree = ViewTree::build(&q, &vo);
    let all: Vec<usize> = (0..q.relations.len()).collect();
    let mut engine = IvmEngine::new(q.clone(), tree, &all, LiftingMap::new());
    engine.set_workers(4);
    engine.set_parallel_threshold(8);
    // Batches above the threshold force the range-partitioned fan-out,
    // whose chunk/route partitions verify_plans re-checks.
    let mut rng = SmallRng::seed_from_u64(4);
    for rel in 0..q.relations.len() {
        let schema = q.relations[rel].schema.clone();
        let pairs: Vec<(Tuple, i64)> = (0..64)
            .map(|_| {
                let vals: Vec<Value> = schema
                    .iter()
                    .map(|_| Value::Int(rng.gen_range(0..32)))
                    .collect();
                (Tuple::new(vals), 1i64)
            })
            .collect();
        let d = Relation::from_pairs(schema, pairs);
        engine.apply(rel, &Delta::Flat(d));
    }
    assert_clean(&engine, "parallel star COUNT (4 workers)");
}

#[test]
fn factored_plans_verify_clean() {
    let q = QueryDef::example_rst(&["A"]);
    let vo = VariableOrder::parse("A - { B, C - { D, E } }", &q.catalog);
    let tree = ViewTree::build(&q, &vo);
    let all: Vec<usize> = (0..q.relations.len()).collect();
    let mut engine = IvmEngine::new(q.clone(), tree, &all, LiftingMap::new());
    // A rank-1 factored delta on S(A, C, E) populates the factored
    // plan cache for one shape; verify_plans re-checks every cached
    // shape's slot program.
    let (a, c, e) = (
        q.catalog.lookup("A").unwrap(),
        q.catalog.lookup("C").unwrap(),
        q.catalog.lookup("E").unwrap(),
    );
    let unary =
        |v, x| Relation::from_pairs(Schema::new(vec![v]), [(Tuple::single(Value::Int(x)), 1i64)]);
    engine.apply(
        1,
        &Delta::factored(vec![unary(a, 1), unary(c, 2), unary(e, 3)]),
    );
    engine.apply(
        1,
        &Delta::factored(vec![unary(e, 4), unary(a, 5), unary(c, 6)]),
    );
    assert_clean(&engine, "star with cached factored shapes");
}

// ---------------------------------------------------------------------
// Mutation checks: the verifier must reject broken IRs. These build the
// same two-node probe shape the engine compiles for the star query
// (delta at R(a, b) probing sibling S(b, c) through its index on b,
// storing the a-margin into parent V(a)) and then break it one field at
// a time.

fn probe_ctx() -> PlanCtx {
    PlanCtx {
        node_keys: vec![vec![0, 1], vec![1, 2], vec![0]],
        materialized: vec![true, true, true],
        node_indexes: vec![vec![], vec![vec![0]], vec![]],
    }
}

fn probe_plan() -> FastPlanIr {
    FastPlanIr {
        entry: 0,
        entry_schema: vec![0, 1],
        steps: vec![FastStepIr {
            node: 2,
            store: true,
            siblings: vec![SiblingIr {
                node: 1,
                full_key: false,
                probe_pos: vec![1],
                rest_pos: vec![1],
                index_id: 0,
            }],
            lift_pos: vec![1, 2],
            out_pos: vec![0],
        }],
    }
}

fn rules(findings: &[fivm_check::plan_ir::Finding]) -> Vec<&'static str> {
    findings.iter().map(|f| f.rule).collect()
}

#[test]
fn hand_built_probe_plan_is_clean() {
    let findings = verify_fast_plan(&probe_ctx(), &probe_plan());
    assert!(findings.is_empty(), "unexpected findings: {findings:?}");
}

#[test]
fn swapped_probe_position_is_rejected() {
    let mut plan = probe_plan();
    // Probe with column a where the index wants column b.
    plan.steps[0].siblings[0].probe_pos = vec![0];
    let findings = verify_fast_plan(&probe_ctx(), &plan);
    assert!(
        rules(&findings).contains(&"probe-key-order"),
        "expected probe-key-order, got {findings:?}"
    );
}

#[test]
fn wrong_rest_columns_are_rejected() {
    let mut plan = probe_plan();
    // Append the sibling's b column (already bound) instead of c.
    plan.steps[0].siblings[0].rest_pos = vec![0];
    let findings = verify_fast_plan(&probe_ctx(), &plan);
    assert!(
        rules(&findings).contains(&"rest-columns"),
        "expected rest-columns, got {findings:?}"
    );
}

#[test]
fn misprojected_store_is_rejected() {
    let mut plan = probe_plan();
    // Store column b into the a-keyed parent.
    plan.steps[0].out_pos = vec![1];
    plan.steps[0].lift_pos = vec![2];
    let findings = verify_fast_plan(&probe_ctx(), &plan);
    assert!(
        rules(&findings).contains(&"projection-order"),
        "expected projection-order, got {findings:?}"
    );
}

#[test]
fn lifted_and_retained_column_is_rejected() {
    let mut plan = probe_plan();
    // Lift the a column the projection also keeps.
    plan.steps[0].lift_pos = vec![0, 1, 2];
    let findings = verify_fast_plan(&probe_ctx(), &plan);
    assert!(
        rules(&findings).contains(&"lift-retained"),
        "expected lift-retained, got {findings:?}"
    );
}

#[test]
fn probe_into_unmaterialized_sibling_is_rejected() {
    let mut ctx = probe_ctx();
    ctx.materialized[1] = false;
    let findings = verify_fast_plan(&ctx, &probe_plan());
    assert!(
        rules(&findings).contains(&"sibling-not-materialized"),
        "expected sibling-not-materialized, got {findings:?}"
    );
}

#[test]
fn full_key_probe_with_rest_columns_is_rejected() {
    let mut plan = probe_plan();
    plan.steps[0].siblings[0].full_key = true;
    plan.steps[0].siblings[0].index_id = FULL_KEY;
    // A full-key probe never appends columns; leaving rest_pos set
    // must be flagged (arity is also wrong: 1 probe column vs 2 keys).
    let findings = verify_fast_plan(&probe_ctx(), &plan);
    let r = rules(&findings);
    assert!(
        r.contains(&"full-key-rest") && r.contains(&"probe-arity"),
        "expected full-key-rest + probe-arity, got {findings:?}"
    );
}

#[test]
fn partition_defects_are_rejected() {
    assert!(verify_partition(&[(0, 5), (5, 10)], 10).is_empty());
    assert!(verify_partition(&[], 0).is_empty());
    let overlap = verify_partition(&[(0, 6), (5, 10)], 10);
    assert!(rules(&overlap).contains(&"range-overlap"), "{overlap:?}");
    let gap = verify_partition(&[(0, 4), (5, 10)], 10);
    assert!(rules(&gap).contains(&"range-cover"), "{gap:?}");
    let oob = verify_partition(&[(0, 12)], 10);
    assert!(rules(&oob).contains(&"range-oob"), "{oob:?}");
    let inverted = verify_partition(&[(5, 2)], 10);
    assert!(rules(&inverted).contains(&"range-inverted"), "{inverted:?}");
}
