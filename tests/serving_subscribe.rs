//! Subscription-delivery semantics over randomized schedules.
//!
//! A subscriber to a materialized view receives, per published epoch,
//! at most one coalesced [`ViewDelta`]; applying a subscription's
//! deltas in arrival order over the epoch-0 state must reproduce the
//! view exactly. The suite checks those semantics (ordering,
//! at-most-once, zero-freeness, boundary exactness) on the in-memory
//! [`ServingEngine`], across threads, and on the write-ahead-logged
//! [`DurableEngine`] — including that recovery lands in a published
//! epoch 0 whose snapshot equals the recovered state.

#[path = "support/oracle.rs"]
mod oracle;

use fivm::prelude::*;
use oracle::{BatchSpec, ScheduleGen};
use std::collections::BTreeMap;

const N_UPDATES: usize = 40;

fn specs() -> Vec<BatchSpec> {
    (0..N_UPDATES)
        .map(|i| BatchSpec {
            rel: (i * 2 + 1) % 3,
            size_exp: (i as u32 * 3 + 2) % 5,
            jitter: (i as u64).wrapping_mul(0xD1B5_4A32_D192_ED03),
            seed: 0x00DD_BA11 + i as u64,
        })
        .collect()
}

fn fresh() -> (QueryDef, IvmEngine<i64>) {
    let q = QueryDef::example_rst(&["A"]);
    let vo = VariableOrder::parse("A - { B, C - { D, E } }", &q.catalog);
    let mut tree = ViewTree::build(&q, &vo);
    add_indicators(&mut tree, &q);
    let engine = IvmEngine::new(q.clone(), tree, &[0, 1, 2], LiftingMap::new());
    (q, engine)
}

fn sym_vars(q: &QueryDef) -> Vec<VarId> {
    vec![
        q.catalog.lookup("B").unwrap(),
        q.catalog.lookup("E").unwrap(),
    ]
}

fn canon(rel: &Relation<i64>) -> BTreeMap<Tuple, i64> {
    rel.iter().map(|(t, p)| (t.clone(), *p)).collect()
}

/// Fold a stream of deltas over a starting state.
fn fold(state: &mut BTreeMap<Tuple, i64>, delta: &ViewDelta<i64>) {
    for (t, p) in &delta.pairs {
        let e = state.entry(t.clone()).or_insert(0);
        *e += *p;
        if *e == 0 {
            state.remove(t);
        }
    }
}

/// Deltas folded over the epoch-0 state reproduce the final view, with
/// strictly increasing epochs, at most one delta per epoch, and no
/// empty or zero-carrying deltas — for the root and an inner view.
#[test]
fn folded_deltas_reproduce_every_subscribed_view() {
    let (q, engine) = fresh();
    let root = engine.tree().root;
    let inner = engine
        .materialized_nodes()
        .into_iter()
        .find(|&n| n != root)
        .expect("an inner materialized view exists");
    let mut s = ServingEngine::new(engine).with_publish_every(3);
    let sub_root = s.subscribe(root).expect("root is materialized");
    let sub_inner = s.subscribe(inner).expect("inner node is materialized");
    let mut gen = ScheduleGen::new(&q, &specs(), &sym_vars(&q));
    while let Some((rel, delta)) = gen.next_batch(&q.catalog) {
        s.apply(rel, &Delta::Flat(delta));
    }
    s.publish(); // flush the final partial window

    for (sub, node) in [(&sub_root, root), (&sub_inner, inner)] {
        let mut state: BTreeMap<Tuple, i64> = BTreeMap::new(); // epoch 0 = empty
        let mut last_epoch = 0u64;
        let mut last_lsn = 0u64;
        for m in sub.drain() {
            let d = m.into_delta().expect("unbounded subscription never lags");
            assert_eq!(d.node, node);
            assert!(
                d.epoch > last_epoch,
                "epoch {} after {last_epoch}: not strictly increasing (at-most-once violated)",
                d.epoch
            );
            assert!(d.lsn > last_lsn, "delta LSNs must advance with epochs");
            assert!(!d.pairs.is_empty(), "empty deltas must be skipped");
            assert!(
                d.pairs.iter().all(|(_, p)| *p != 0),
                "delivered deltas must be zero-free"
            );
            last_epoch = d.epoch;
            last_lsn = d.lsn;
            fold(&mut state, &d);
        }
        let want = canon(&s.engine().view_relation(node).unwrap());
        assert_eq!(
            state, want,
            "folded deltas for node {node} diverge from the live view"
        );
    }
}

/// Per-key coalescing: inserting and deleting the same tuple within one
/// epoch nets to zero, so no delta is delivered for that epoch.
#[test]
fn net_zero_epochs_deliver_nothing() {
    let (q, engine) = fresh();
    let root = engine.tree().root;
    let mut s = ServingEngine::new(engine);
    let sub = s.subscribe(root).unwrap();
    // Complete the join first so R-updates actually reach the root.
    let pair = |rel: usize, t: Tuple, m: i64| {
        Delta::Flat(Relation::from_pairs(
            q.relations[rel].schema.clone(),
            [(t, m)],
        ))
    };
    s.apply(1, &pair(1, fivm::tuple![1, 3, 5], 1));
    s.apply(2, &pair(2, fivm::tuple![3, 4], 1));
    s.publish();
    let _ = sub.drain();
    // Insert and delete the same R tuple within one epoch: the root
    // gains and loses the same contribution, netting to zero.
    s.apply(0, &pair(0, fivm::tuple![1, 2], 1));
    let changed = sub.drain(); // nothing published yet, nothing delivered
    assert!(changed.is_empty());
    s.apply(0, &pair(0, fivm::tuple![1, 2], -1));
    s.publish();
    assert!(
        sub.try_recv().is_none(),
        "a net-zero epoch must not deliver a delta"
    );
    // The same insert, published alone, does deliver — the zero above
    // came from coalescing, not from a dead subscription.
    s.apply(0, &pair(0, fivm::tuple![1, 2], 1));
    s.publish();
    assert!(sub.try_recv().is_some(), "non-zero epoch must deliver");
}

/// A dropped subscriber is pruned and capture is switched back off, so
/// the hot path stops paying for it.
#[test]
fn dropping_the_last_subscriber_disables_capture() {
    let (q, engine) = fresh();
    let root = engine.tree().root;
    let mut s = ServingEngine::new(engine);
    let sub = s.subscribe(root).unwrap();
    assert!(s.engine().view_store(root).unwrap().capture_enabled());
    drop(sub);
    // Capture stays on until a delivery notices the dead receiver —
    // drive one epoch that actually changes the root (a complete join
    // row; a lone R tuple would never reach the root view).
    for (rel, t) in [
        (0usize, fivm::tuple![7, 8]),
        (1, fivm::tuple![7, 3, 5]),
        (2, fivm::tuple![3, 4]),
    ] {
        let d = Relation::from_pairs(q.relations[rel].schema.clone(), [(t, 1i64)]);
        s.apply(rel, &Delta::Flat(d));
    }
    s.publish();
    assert!(
        !s.engine().view_store(root).unwrap().capture_enabled(),
        "capture must be off once the last subscriber is gone"
    );
}

/// Deltas are consumable from another thread while the writer keeps
/// publishing (the intended deployment shape).
#[test]
fn cross_thread_consumption() {
    let (q, engine) = fresh();
    let root = engine.tree().root;
    let mut s = ServingEngine::new(engine).with_publish_every(1);
    let sub = s.subscribe(root).unwrap();
    let consumer = std::thread::spawn(move || {
        let mut state: BTreeMap<Tuple, i64> = BTreeMap::new();
        let mut last_epoch = 0u64;
        while let Some(m) = sub.recv() {
            let d = m.into_delta().expect("unbounded subscription never lags");
            assert!(d.epoch > last_epoch, "epoch order broken across threads");
            last_epoch = d.epoch;
            fold(&mut state, &d);
        }
        state
    });
    let mut gen = ScheduleGen::new(&q, &specs(), &sym_vars(&q));
    while let Some((rel, delta)) = gen.next_batch(&q.catalog) {
        s.apply(rel, &Delta::Flat(delta));
    }
    let want = canon(&s.engine().view_relation(root).unwrap());
    drop(s); // hangs up the channel; the consumer drains and exits
    let got = consumer.join().expect("consumer panicked");
    assert_eq!(got, want, "cross-thread folded state diverges");
}

/// Backpressure: a bounded subscription that falls behind drops its
/// oldest deltas and surfaces exactly one [`SubMessage::Lagged`] marker
/// carrying the number of missed epochs, while the retained tail stays
/// byte-identical to what an unbounded subscriber received.
#[test]
fn bounded_subscription_drops_oldest_and_reports_lag() {
    let (q, engine) = fresh();
    let root = engine.tree().root;
    let mut s = ServingEngine::new(engine);
    let bounded = s.subscribe_bounded(root, 2).expect("root is materialized");
    let witness = s.subscribe(root).expect("root is materialized");
    let pair = |rel: usize, t: Tuple, m: i64| {
        Delta::Flat(Relation::from_pairs(
            q.relations[rel].schema.clone(),
            [(t, m)],
        ))
    };
    // Complete the join so every new R row reaches the root.
    s.apply(1, &pair(1, fivm::tuple![1, 3, 5], 1));
    s.apply(2, &pair(2, fivm::tuple![3, 4], 1));
    s.publish(); // root still empty: no delta for either subscriber
                 // Six epochs, each with a distinct root delta, none drained.
    for k in 0..6 {
        s.apply(0, &pair(0, fivm::tuple![1, k], 1));
        s.publish();
    }

    let full: Vec<ViewDelta<i64>> = witness
        .drain()
        .into_iter()
        .map(|m| m.into_delta().expect("unbounded subscription never lags"))
        .collect();
    assert_eq!(full.len(), 6, "fixture: six non-empty epochs published");

    let msgs = bounded.drain();
    assert_eq!(
        msgs.len(),
        3,
        "bound of 2 keeps two deltas plus one lag marker"
    );
    match &msgs[0] {
        SubMessage::Lagged {
            node,
            missed_epochs,
        } => {
            assert_eq!(*node, root);
            assert_eq!(*missed_epochs, 4, "four of six epochs were evicted");
        }
        SubMessage::Delta(_) => panic!("first message must be the lag marker"),
    }
    for (got, want) in msgs[1..].iter().zip(&full[4..]) {
        let got = got.clone().into_delta().expect("tail must be deltas");
        assert_eq!(got.epoch, want.epoch, "retained tail epochs diverge");
        assert_eq!(got.pairs, want.pairs, "retained tail payloads diverge");
    }
    // Recovery protocol: a lagged consumer re-bases on the live view,
    // after which the retained tail has already been incorporated — the
    // folded witness state equals that re-base target.
    let mut state: BTreeMap<Tuple, i64> = BTreeMap::new();
    for d in &full {
        fold(&mut state, d);
    }
    assert_eq!(state, canon(&s.engine().view_relation(root).unwrap()));
}

/// The durable engine serves the same way: subscriptions and epoch
/// pins work over the WAL-backed engine, and recovery republishes the
/// recovered state as epoch 0.
#[test]
fn durable_engine_serves_and_recovery_lands_in_an_epoch() {
    let dir = std::env::temp_dir().join(format!("fivm-serve-durable-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let (q, engine) = fresh();
    let root = engine.tree().root;
    let mut d = DurableEngine::create(&dir, engine, DurabilityConfig::default()).unwrap();
    let sub = d.subscribe(root).expect("root is materialized");
    let reader = d.reader();
    assert_eq!(reader.pin().lsn(), 0, "creation publishes epoch 0");

    let mut gen = ScheduleGen::new(&q, &specs(), &sym_vars(&q));
    let mut applied = 0u64;
    while let Some((rel, delta)) = gen.next_batch(&q.catalog) {
        d.apply(rel, &Delta::Flat(delta)).unwrap();
        applied += 1;
        if applied.is_multiple_of(5) {
            d.publish();
        }
    }
    let snap = d.publish();
    assert_eq!(snap.lsn(), applied);
    assert_eq!(reader.pin().lsn(), applied, "readers see the last publish");
    let mut state: BTreeMap<Tuple, i64> = BTreeMap::new();
    for m in sub.drain() {
        let delta = m.into_delta().expect("unbounded subscription never lags");
        fold(&mut state, &delta);
    }
    assert_eq!(
        state,
        canon(&d.engine().view_relation(root).unwrap()),
        "durable-engine subscription deltas diverge from the live view"
    );
    let want = canon(&d.engine().view_relation(root).unwrap());
    d.sync_all().unwrap();
    drop(d);

    // Restart: the recovered state is itself published as epoch 0.
    let (_q2, engine2) = fresh();
    let (recovered, report) =
        DurableEngine::open(&dir, engine2, DurabilityConfig::default()).unwrap();
    assert_eq!(report.last_lsn, applied);
    let pin = recovered.reader().pin();
    assert_eq!(pin.epoch(), 0, "recovery republishes as epoch 0");
    assert_eq!(pin.lsn(), applied, "epoch 0 covers the recovered prefix");
    assert_eq!(
        canon(&pin.result()),
        want,
        "recovered epoch 0 snapshot diverges"
    );
    drop(recovered);
    std::fs::remove_dir_all(&dir).unwrap();
}
