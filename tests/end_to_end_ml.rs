//! End-to-end machine learning over joins (paper §6.2): plant a linear
//! model in a generated star-join dataset, maintain the cofactor matrix
//! incrementally with F-IVM, train by gradient descent, and check that
//! the planted coefficients are recovered — then keep streaming updates
//! and verify the refreshed statistics stay exact.

use fivm::prelude::*;
use fivm::tuple;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Two relations joined on K: F(K, X1, X2) and L(K, Y) where
/// Y = 3 + 2·X1 − X2 + planted deterministic noise on the join.
fn planted_query() -> QueryDef {
    QueryDef::new(&[("F", &["K", "X1", "X2"]), ("L", &["K", "Y"])], &[])
}

#[test]
fn planted_model_recovered_from_maintained_cofactor() {
    let q = planted_query();
    let vo = VariableOrder::auto(&q);
    let tree = ViewTree::build(&q, &vo);
    let spec = CofactorSpec::over_all_vars(&q);
    let mut engine: IvmEngine<Cofactor> =
        IvmEngine::new(q.clone(), tree.clone(), &[0, 1], spec.liftings());

    let mut rng = SmallRng::seed_from_u64(99);
    let n = 400;
    // one L row per key (so the join does not duplicate labels)
    let mut pending_y: Vec<(i64, f64)> = Vec::new();
    for k in 0..n {
        let x1 = rng.gen_range(-5.0..5.0f64);
        let x2 = rng.gen_range(-5.0..5.0f64);
        let y = 3.0 + 2.0 * x1 - x2;
        let df = Relation::from_pairs(
            q.relations[0].schema.clone(),
            [(tuple![k as i64, x1, x2], Cofactor::one())],
        );
        engine.apply(0, &Delta::Flat(df));
        pending_y.push((k as i64, y));
    }
    for (k, y) in pending_y {
        let dl = Relation::from_pairs(
            q.relations[1].schema.clone(),
            [(tuple![k, y], Cofactor::one())],
        );
        engine.apply(1, &Delta::Flat(dl));
    }

    let (c, s, qm) = spec.extract(&engine.result());
    assert_eq!(c, n as i64);
    let var = |name: &str| spec.index_of(q.catalog.lookup(name).unwrap()).unwrap() as usize;
    let model = train(
        c,
        &s,
        &qm,
        var("Y"),
        &[var("X1"), var("X2")],
        &TrainConfig::default(),
    );
    assert!((model.bias - 3.0).abs() < 1e-2, "bias {}", model.bias);
    assert!((model.weights[0] - 2.0).abs() < 1e-2);
    assert!((model.weights[1] + 1.0).abs() < 1e-2);
    assert!(model.mse < 1e-4, "noise-free fit, mse {}", model.mse);
}

/// The cofactor matrix stays exact under deletions: removing all rows of
/// one key leaves the statistics of the remaining data.
#[test]
fn cofactor_exact_under_deletions() {
    let q = planted_query();
    let vo = VariableOrder::auto(&q);
    let tree = ViewTree::build(&q, &vo);
    let spec = CofactorSpec::over_all_vars(&q);
    let lifts = spec.liftings();
    let mut engine: IvmEngine<Cofactor> =
        IvmEngine::new(q.clone(), tree.clone(), &[0, 1], lifts.clone());
    let mut db = Database::empty(&q);

    let rows = [
        (0i64, 1.0, 2.0, 10.0),
        (1, -1.0, 0.5, 0.0),
        (2, 3.0, -2.0, 7.5),
    ];
    for &(k, x1, x2, y) in &rows {
        let df = Relation::from_pairs(
            q.relations[0].schema.clone(),
            [(tuple![k, x1, x2], Cofactor::one())],
        );
        let dl = Relation::from_pairs(
            q.relations[1].schema.clone(),
            [(tuple![k, y], Cofactor::one())],
        );
        engine.apply(0, &Delta::Flat(df.clone()));
        engine.apply(1, &Delta::Flat(dl.clone()));
        db.relations[0].union_in_place(&df);
        db.relations[1].union_in_place(&dl);
    }
    // delete key 1 from F
    let del = Relation::from_pairs(
        q.relations[0].schema.clone(),
        [(tuple![1i64, -1.0, 0.5], Cofactor::one().neg())],
    );
    engine.apply(0, &Delta::Flat(del.clone()));
    db.relations[0].union_in_place(&del);

    let oracle = eval_tree(&tree, &db, &lifts);
    let (c, s, qm) = spec.extract(&engine.result());
    let (oc, os, oq) = spec.extract(&oracle);
    assert_eq!(c, oc);
    assert_eq!(c, 2);
    assert!(s.iter().zip(&os).all(|(a, b)| (a - b).abs() < 1e-12));
    assert!(qm.iter().zip(&oq).all(|(a, b)| (a - b).abs() < 1e-12));
}

/// Per-group models (the Example 1.1 discussion: “one model for each
/// pair of values (A, C)”): free variables keep the cofactor keyed per
/// group.
#[test]
fn per_group_cofactor_models() {
    // Measurements F(G, X, Y) joined with a per-group dimension D(G):
    // (X, Y) stay paired within F, so per-group correlations survive.
    let q = QueryDef::new(&[("F", &["G", "X", "Y"]), ("D", &["G"])], &["G"]);
    let vo = VariableOrder::parse("G - X - Y", &q.catalog);
    let tree = ViewTree::build(&q, &vo);
    // index only X and Y (G is a group key, not a feature)
    let x = q.catalog.lookup("X").unwrap();
    let y = q.catalog.lookup("Y").unwrap();
    let spec = CofactorSpec { vars: vec![x, y] };
    let mut engine: IvmEngine<Cofactor> = IvmEngine::new(q.clone(), tree, &[0, 1], spec.liftings());
    for g in [0i64, 1] {
        let dd = Relation::from_pairs(
            q.relations[1].schema.clone(),
            [(tuple![g], Cofactor::one())],
        );
        engine.apply(1, &Delta::Flat(dd));
    }
    // group 0: y = 2x; group 1: y = −x
    for (g, x_, y_) in [
        (0i64, 1.0, 2.0),
        (0, 2.0, 4.0),
        (0, 3.0, 6.0),
        (1, 1.0, -1.0),
        (1, 2.0, -2.0),
        (1, 4.0, -4.0),
    ] {
        let df = Relation::from_pairs(
            q.relations[0].schema.clone(),
            [(tuple![g, x_, y_], Cofactor::one())],
        );
        engine.apply(0, &Delta::Flat(df));
    }
    let result = engine.result();
    for (g, slope) in [(0i64, 2.0), (1, -1.0)] {
        let payload = result.get(&tuple![g]).expect("group present").clone();
        let (c, s, qm) = payload.to_dense(2);
        let model = train(c, &s, &qm, 1, &[0], &TrainConfig::default());
        assert!(
            (model.weights[0] - slope).abs() < 1e-2,
            "group {g}: slope {} vs {slope}",
            model.weights[0]
        );
        assert!(model.bias.abs() < 1e-2);
    }
}
