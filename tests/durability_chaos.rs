//! Chaos harness for the fault-injectable storage layer.
//!
//! Every test here runs the engine against a hostile disk — a
//! [`FaultVfs`] injecting EIO, ENOSPC, short writes, fsync failures and
//! torn-write-then-freeze at its Vfs call sites — and holds the
//! degraded-mode contract:
//!
//! * **no panic, ever** — every fault surfaces as a typed error or is
//!   absorbed by a retry;
//! * **nothing at or below `durable_lsn()` is ever lost** — after any
//!   fault followed by a simulated power cut (directory copied, the
//!   current segment truncated to its fsynced prefix), recovery
//!   restores at least the durable watermark and lands byte-identical
//!   on a reference prefix;
//! * **heal loses nothing acked** — a degraded engine keeps serving
//!   reads, `try_heal()` rolls the log over from the retained buffer,
//!   and the healed engine converges byte-identical to a fault-free
//!   reference run of the same schedule.
//!
//! The short-write sweep additionally pins the post-error contract of
//! `DurableEngine::apply`: a failed append rolls the group-commit
//! buffer back to the last frame boundary, so the log never carries a
//! half-frame — verified at **every byte offset** of an update frame.

#[path = "support/oracle.rs"]
mod oracle;

use fivm::durability::wal;
use fivm::prelude::*;
use oracle::{BatchSpec, ScheduleGen};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// All materialized views, sorted — the byte-identity witness.
type Snapshot = Vec<(usize, Vec<(Tuple, i64)>)>;

fn scratch(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "fivm-chaos-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn copy_dir(src: &Path, dst: &Path) {
    std::fs::create_dir_all(dst).unwrap();
    for entry in std::fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        std::fs::copy(entry.path(), dst.join(entry.file_name())).unwrap();
    }
}

fn snapshot(e: &IvmEngine<i64>) -> Snapshot {
    e.materialized_nodes()
        .into_iter()
        .map(|n| (n, e.view_relation(n).unwrap().sorted()))
        .collect()
}

// ---------------------------------------------------------------------
// Numeric fixture (no symbol columns → exactly one WAL frame, and
// exactly one Vfs write, per update — the unit the sweeps count in).
// ---------------------------------------------------------------------

const N_NUMERIC: usize = 8;
/// The update whose frame the short-write sweep attacks.
const TARGET: usize = 3;

fn numeric_fresh() -> (QueryDef, IvmEngine<i64>) {
    let q = QueryDef::example_rst(&[]);
    let vo = VariableOrder::parse("A - { B, C - { D, E } }", &q.catalog);
    let mut tree = ViewTree::build(&q, &vo);
    add_indicators(&mut tree, &q);
    let engine = IvmEngine::new(q.clone(), tree, &[0, 1, 2], LiftingMap::new());
    (q, engine)
}

fn numeric_specs() -> Vec<BatchSpec> {
    (0..N_NUMERIC)
        .map(|i| BatchSpec {
            rel: i % 3,
            size_exp: (i as u32) % 2, // 1–2 tuples: small, cheap frames
            jitter: (i as u64).wrapping_mul(0x2545_F491_4F6C_DD1D),
            seed: 0xBAD_D15C + i as u64,
        })
        .collect()
}

fn numeric_reference() -> Snapshot {
    let (q, mut engine) = numeric_fresh();
    let mut gen = ScheduleGen::new(&q, &numeric_specs(), &[]);
    while let Some((rel, delta)) = gen.next_batch(&q.catalog) {
        engine.apply(rel, &Delta::Flat(delta));
    }
    snapshot(&engine)
}

/// One write op per apply, no fsyncs until asked, no rotation.
fn numeric_cfg(max_retries: u32) -> DurabilityConfig {
    DurabilityConfig {
        checkpoint_every: 0,
        segment_bytes: 1 << 30,
        flush_bytes: 0,
        sync: SyncPolicy::OnCheckpoint,
        retained_checkpoints: 2,
        max_retries,
        retry_backoff: Duration::ZERO,
    }
}

fn reopen_numeric(dir: &Path) -> (DurableEngine<i64>, RecoveryReport) {
    let (_q, engine) = numeric_fresh();
    DurableEngine::open(dir, engine, numeric_cfg(2)).expect("recovery after chaos")
}

/// Every update LSN in the on-disk log, in log order, with torn-tail
/// detection — the "no half-frame, no duplicate" witness.
fn log_update_lsns(dir: &Path, q: &QueryDef) -> Vec<u64> {
    let schemas: Vec<Schema> = q.relations.iter().map(|r| r.schema.clone()).collect();
    let mut lsns = Vec::new();
    for seg in wal::list_segments(dir).unwrap() {
        let (records, torn) = wal::read_segment::<i64>(&seg, &schemas).unwrap();
        assert_eq!(torn, None, "segment {} carries a torn frame", seg.seq);
        for rec in records {
            if let wal::WalRecord::Update { lsn, .. } = rec {
                lsns.push(lsn);
            }
        }
    }
    lsns
}

/// Byte length of the single frame `apply` writes for update `TARGET`,
/// measured on a fault-free run (the sweep space of the short-write
/// tests).
fn target_frame_len() -> u64 {
    let dir = scratch("framelen");
    let (q, engine) = numeric_fresh();
    let mut gen = ScheduleGen::new(&q, &numeric_specs(), &[]);
    let mut d = DurableEngine::create(&dir, engine, numeric_cfg(2)).unwrap();
    for _ in 0..=TARGET {
        let (rel, delta) = gen.next_batch(&q.catalog).unwrap();
        d.apply(rel, &Delta::Flat(delta)).unwrap();
    }
    let segs = wal::list_segments(&dir).unwrap();
    assert_eq!(segs.len(), 1, "fixture: a single unrotated segment");
    let spans = wal::frame_spans(&segs[0].path).unwrap();
    assert_eq!(spans.len(), TARGET + 1, "fixture: one frame per update");
    drop(d);
    std::fs::remove_dir_all(&dir).unwrap();
    spans[TARGET].1
}

/// Satellite 1a — a short write at **every byte offset** of an update
/// frame is retried transparently: the apply succeeds, the log ends on
/// a frame boundary (never a half-frame), and the full run recovers
/// byte-identical with every LSN exactly once.
#[test]
fn short_write_at_every_frame_offset_is_retried_to_a_frame_boundary() {
    let reference = numeric_reference();
    let frame_len = target_frame_len();
    for cut in 0..frame_len {
        let dir = scratch("shortwrite-retry");
        let (q, engine) = numeric_fresh();
        let mut gen = ScheduleGen::new(&q, &numeric_specs(), &[]);
        let vfs = FaultVfs::new(); // counts ops; injects nothing until armed
        let mut d =
            DurableEngine::create_with_vfs(&dir, engine, numeric_cfg(2), Arc::new(vfs.clone()))
                .unwrap();
        for k in 0.. {
            let Some((rel, delta)) = gen.next_batch(&q.catalog) else {
                break;
            };
            if k == TARGET {
                // The very next Vfs op is this frame's group-commit
                // write: land exactly `cut` bytes, then fail.
                vfs.fail_nth_short(0, cut as usize);
            }
            d.apply(rel, &Delta::Flat(delta))
                .unwrap_or_else(|e| panic!("cut {cut}: retry did not absorb the fault: {e}"));
            if k == TARGET {
                assert_eq!(vfs.injected(), 1, "cut {cut}: armed fault must fire");
                assert!(
                    d.stats().io_retries >= 1,
                    "cut {cut}: the absorbed fault must be visible in stats"
                );
                // Post-error contract: the buffer rolled back to the
                // last frame boundary and was rewritten — the log holds
                // exactly the applied frames, none of them torn.
                assert_eq!(
                    log_update_lsns(&dir, &q),
                    (1..=TARGET as u64 + 1).collect::<Vec<_>>(),
                    "cut {cut}: log is not the exact applied prefix"
                );
            }
        }
        d.sync_all().unwrap();
        assert_eq!(d.last_lsn(), N_NUMERIC as u64);
        drop(d);
        let (recovered, report) = reopen_numeric(&dir);
        assert_eq!(report.last_lsn, N_NUMERIC as u64, "cut {cut}");
        assert_eq!(
            snapshot(recovered.engine()),
            reference,
            "cut {cut}: recovered state diverges from the fault-free reference"
        );
        drop(recovered);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

/// Satellite 1b — the same sweep with retries disabled: the apply fails
/// with a typed `Degraded` error carrying the exact watermark, nothing
/// was applied (rollback to the frame boundary), and `try_heal()` +
/// re-apply converge to the fault-free reference.
#[test]
fn short_write_at_every_frame_offset_degrades_cleanly_and_heals() {
    let reference = numeric_reference();
    let frame_len = target_frame_len();
    for cut in 0..frame_len {
        let dir = scratch("shortwrite-heal");
        let (q, engine) = numeric_fresh();
        let mut gen = ScheduleGen::new(&q, &numeric_specs(), &[]);
        let vfs = FaultVfs::new();
        let mut d =
            DurableEngine::create_with_vfs(&dir, engine, numeric_cfg(0), Arc::new(vfs.clone()))
                .unwrap();
        for k in 0.. {
            let Some((rel, delta)) = gen.next_batch(&q.catalog) else {
                break;
            };
            if k != TARGET {
                d.apply(rel, &Delta::Flat(delta)).unwrap();
                continue;
            }
            vfs.fail_nth_short(0, cut as usize);
            let err = d
                .apply(rel, &Delta::Flat(delta.clone()))
                .expect_err("zero retries must degrade on the first fault");
            match &err {
                fivm::durability::DurabilityError::Degraded {
                    durable_lsn,
                    last_lsn,
                    ..
                } => {
                    assert_eq!(
                        *last_lsn, TARGET as u64,
                        "cut {cut}: the failed update must not count as applied"
                    );
                    assert_eq!(*durable_lsn, d.durable_lsn(), "cut {cut}");
                }
                other => panic!("cut {cut}: expected Degraded, got {other}"),
            }
            assert!(d.is_degraded());
            assert_eq!(d.mode(), EngineMode::Degraded);
            assert!(d.degraded_cause().is_some());
            let heal = d
                .try_heal()
                .unwrap_or_else(|e| panic!("cut {cut}: heal: {e}"));
            assert!(heal.healed, "cut {cut}");
            assert!(heal.carried_bytes > 0, "cut {cut}: retained buffer carried");
            assert_eq!(d.stats().heals, 1);
            assert_eq!(
                d.durable_lsn(),
                d.last_lsn(),
                "cut {cut}: heal must re-persist every acked update"
            );
            // The update the fault rejected is re-applied, losing nothing.
            d.apply(rel, &Delta::Flat(delta))
                .unwrap_or_else(|e| panic!("cut {cut}: post-heal apply: {e}"));
        }
        d.sync_all().unwrap();
        drop(d);
        let (recovered, report) = reopen_numeric(&dir);
        assert_eq!(report.last_lsn, N_NUMERIC as u64, "cut {cut}");
        assert_eq!(
            snapshot(recovered.engine()),
            reference,
            "cut {cut}: healed run diverges from the fault-free reference"
        );
        drop(recovered);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

/// Degraded mode is a serving mode, not an outage: after a persistent
/// fsync failure the engine rejects writes with the exact durable
/// watermark but keeps pinning epochs, publishing, and feeding
/// subscribers — and `try_heal()` recovers without losing the
/// acknowledged-but-not-yet-durable update.
#[test]
fn degraded_mode_serves_reads_and_heals_without_losing_acked_updates() {
    let dir = scratch("degraded-serving");
    let (q, engine) = numeric_fresh();
    let root = engine.tree().root;
    // Explicit schedule: complete the join first, then R rows that each
    // change the root — so every epoch below carries a root delta.
    let updates: Vec<(usize, Tuple)> = [(1usize, fivm::tuple![1, 3, 5]), (2, fivm::tuple![3, 4])]
        .into_iter()
        .chain((0..6).map(|k| (0usize, fivm::tuple![1, k])))
        .collect();
    let mk = |rel: usize, t: &Tuple| {
        Delta::Flat(Relation::from_pairs(
            q.relations[rel].schema.clone(),
            [(t.clone(), 1i64)],
        ))
    };
    let reference = {
        let (_qr, mut e) = numeric_fresh();
        for (rel, t) in &updates {
            e.apply(*rel, &mk(*rel, t));
        }
        snapshot(&e)
    };
    let cfg = DurabilityConfig {
        sync: SyncPolicy::EveryFlush, // ops per apply: write, fsync
        max_retries: 0,
        ..numeric_cfg(0)
    };
    let vfs = FaultVfs::new();
    let mut d = DurableEngine::create_with_vfs(&dir, engine, cfg, Arc::new(vfs.clone())).unwrap();
    let reader = d.reader();
    let sub = d.subscribe(root).expect("root is materialized");

    const ACKED_OK: usize = 5;
    for (rel, t) in &updates[..ACKED_OK] {
        d.apply(*rel, &mk(*rel, t)).unwrap();
    }
    assert_eq!(
        d.durable_lsn(),
        ACKED_OK as u64,
        "EveryFlush syncs each apply"
    );

    // Fail the ack-boundary fsync of the next update: the engine has
    // already applied it, so apply acks Ok — and degrades, with the
    // update in memory and the retained buffer but not on stable media.
    vfs.fail_nth(1, FaultKind::SyncFail);
    let (rel, t) = &updates[ACKED_OK];
    d.apply(*rel, &mk(*rel, t))
        .expect("the update itself was applied; only durability lagged");
    assert_eq!(vfs.injected(), 1);
    assert!(d.is_degraded());
    let acked = ACKED_OK as u64 + 1;
    assert_eq!(d.last_lsn(), acked);
    assert_eq!(
        d.durable_lsn(),
        ACKED_OK as u64,
        "the failed fsync must not ack durability"
    );

    // Writes are rejected with the exact watermark...
    let (rel2, t2) = &updates[ACKED_OK + 1];
    for err in [
        d.apply(*rel2, &mk(*rel2, t2))
            .expect_err("degraded rejects writes"),
        d.checkpoint().expect_err("degraded rejects checkpoints"),
        d.sync_all().expect_err("degraded rejects syncs"),
    ] {
        match err {
            fivm::durability::DurabilityError::Degraded {
                durable_lsn,
                last_lsn,
                ..
            } => {
                assert_eq!(durable_lsn, ACKED_OK as u64);
                assert_eq!(last_lsn, acked);
            }
            other => panic!("expected Degraded, got {other}"),
        }
    }
    // ...while reads keep flowing: pins, publishes, subscriptions.
    let snap = d.publish();
    assert_eq!(
        snap.lsn(),
        acked,
        "degraded publish covers every acked update"
    );
    assert_eq!(reader.pin().lsn(), acked);
    assert!(
        sub.drain().iter().any(|m| !m.is_lagged()),
        "subscribers must keep draining deltas in degraded mode"
    );
    assert!(d.serving_stats().current_epoch > 0);

    // Heal: the log rolls over from the retained buffer; the acked
    // update becomes durable without being re-applied.
    let heal = d.try_heal().expect("fault cleared, heal must succeed");
    assert!(heal.healed);
    assert!(heal.carried_bytes > 0);
    assert_eq!(d.stats().heals, 1);
    assert!(!d.is_degraded());
    assert_eq!(d.durable_lsn(), d.last_lsn());
    assert_eq!(
        d.last_lsn(),
        acked,
        "heal must not re-apply or drop updates"
    );

    // The rejected update and the rest of the schedule land normally.
    for (rel, t) in &updates[ACKED_OK + 1..] {
        d.apply(*rel, &mk(*rel, t)).unwrap();
    }
    d.sync_all().unwrap();
    drop(d);
    let (recovered, report) = reopen_numeric(&dir);
    assert_eq!(report.last_lsn, updates.len() as u64);
    assert_eq!(
        snapshot(recovered.engine()),
        reference,
        "acked update lost across degrade + heal + recovery"
    );
    drop(recovered);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Torn-write-then-crash: the device garbles half a frame and freezes
/// (every later op fails). The engine degrades without panicking, heal
/// is refused while the device is dead, and recovery on the real
/// directory truncates the garbled tail and restores exactly the
/// durable prefix.
#[test]
fn torn_write_then_crash_recovers_the_durable_prefix() {
    let dir = scratch("torn");
    let (q, engine) = numeric_fresh();
    let mut gen = ScheduleGen::new(&q, &numeric_specs(), &[]);
    let cfg = DurabilityConfig {
        sync: SyncPolicy::EveryFlush,
        max_retries: 1, // the retry meets the frozen device and fails too
        ..numeric_cfg(1)
    };
    let vfs = FaultVfs::new();
    let mut d = DurableEngine::create_with_vfs(&dir, engine, cfg, Arc::new(vfs.clone())).unwrap();

    // Build reference prefixes as we go: refs[k] = state after k updates.
    let (_qr, mut ref_engine) = numeric_fresh();
    let mut ref_gen = ScheduleGen::new(&q, &numeric_specs(), &[]);
    let mut refs = vec![snapshot(&ref_engine)];

    const DURABLE: usize = 6;
    for _ in 0..DURABLE {
        let (rel, delta) = gen.next_batch(&q.catalog).unwrap();
        d.apply(rel, &Delta::Flat(delta)).unwrap();
        let (rrel, rdelta) = ref_gen.next_batch(&q.catalog).unwrap();
        ref_engine.apply(rrel, &Delta::Flat(rdelta));
        refs.push(snapshot(&ref_engine));
    }
    assert_eq!(d.durable_lsn(), DURABLE as u64);

    vfs.fail_nth(0, FaultKind::TornWrite);
    let (rel, delta) = gen.next_batch(&q.catalog).unwrap();
    let err = d
        .apply(rel, &Delta::Flat(delta))
        .expect_err("torn write + frozen device must degrade");
    match err {
        fivm::durability::DurabilityError::Degraded {
            durable_lsn,
            last_lsn,
            ..
        } => {
            assert_eq!(durable_lsn, DURABLE as u64);
            assert_eq!(last_lsn, DURABLE as u64, "rolled back, not applied");
        }
        other => panic!("expected Degraded, got {other}"),
    }
    assert!(
        d.try_heal().is_err(),
        "heal against a frozen device must fail, not pretend"
    );
    assert!(d.is_degraded(), "a failed heal leaves the engine degraded");
    drop(d); // crash: the Drop-flush hits the frozen device and is swallowed

    // Recovery reads the real directory (StdVfs): the half-written,
    // bit-flipped tail fails its CRC and is truncated away.
    let (recovered, report) = reopen_numeric(&dir);
    assert_eq!(
        report.last_lsn, DURABLE as u64,
        "recovery must land exactly on the durable prefix"
    );
    assert!(
        report.truncated_bytes > 0,
        "the torn tail must be physically truncated"
    );
    assert_eq!(snapshot(recovered.engine()), refs[DURABLE]);
    drop(recovered);
    std::fs::remove_dir_all(&dir).unwrap();
}

// ---------------------------------------------------------------------
// Seeded chaos: randomized faults at every Vfs call site, over the
// symbol-carrying running-example schedule, with mid-run crash
// simulation and final byte-identical convergence.
// ---------------------------------------------------------------------

const N_CHAOS: usize = 30;

fn chaos_fresh() -> (QueryDef, IvmEngine<i64>) {
    let q = QueryDef::example_rst(&["A"]);
    let vo = VariableOrder::parse("A - { B, C - { D, E } }", &q.catalog);
    let mut tree = ViewTree::build(&q, &vo);
    add_indicators(&mut tree, &q);
    let engine = IvmEngine::new(q.clone(), tree, &[0, 1, 2], LiftingMap::new());
    (q, engine)
}

fn chaos_sym_vars(q: &QueryDef) -> Vec<VarId> {
    vec![
        q.catalog.lookup("B").unwrap(),
        q.catalog.lookup("E").unwrap(),
    ]
}

fn chaos_specs() -> Vec<BatchSpec> {
    (0..N_CHAOS)
        .map(|i| BatchSpec {
            rel: (i * 2 + 1) % 3,
            size_exp: (i as u32 * 3 + 1) % 4,
            jitter: (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            seed: 0xCAFE_F00D + i as u64,
        })
        .collect()
}

fn chaos_cfg() -> DurabilityConfig {
    DurabilityConfig {
        checkpoint_every: 6,
        segment_bytes: 1024, // rotate often: faults hit rotation too
        flush_bytes: 64,
        sync: SyncPolicy::Batched {
            max_updates: 3,
            max_delay: Duration::from_secs(3600),
        },
        retained_checkpoints: 2,
        max_retries: 1,
        retry_backoff: Duration::ZERO,
    }
}

/// `refs[k]` = fault-free state after exactly the first `k` updates.
fn chaos_references() -> Vec<Snapshot> {
    let (q, mut engine) = chaos_fresh();
    let mut gen = ScheduleGen::new(&q, &chaos_specs(), &chaos_sym_vars(&q));
    let mut out = vec![snapshot(&engine)];
    while let Some((rel, delta)) = gen.next_batch(&q.catalog) {
        engine.apply(rel, &Delta::Flat(delta));
        out.push(snapshot(&engine));
    }
    out
}

/// Simulated power cut: copy the directory, truncate the current
/// segment to its fsynced prefix (drop it entirely if not even its
/// header is durable), and recover from the wreckage with a plain
/// `StdVfs`. Anything at or below the durable watermark must survive,
/// and the recovered state must be byte-identical to the fault-free
/// reference at the recovered LSN.
fn chaos_crash_check(dir: &Path, d: &DurableEngine<i64>, refs: &[Snapshot], seed: u64) {
    let (seq, synced_len) = d.wal_durable_span();
    let durable = d.durable_lsn();
    let crashed = scratch("chaos-cut");
    copy_dir(dir, &crashed);
    for seg in wal::list_segments(&crashed).unwrap() {
        if seg.seq == seq {
            if synced_len == 0 {
                std::fs::remove_file(&seg.path).unwrap();
            } else {
                std::fs::OpenOptions::new()
                    .write(true)
                    .open(&seg.path)
                    .unwrap()
                    .set_len(synced_len)
                    .unwrap();
            }
        }
    }
    let (_q, engine) = chaos_fresh();
    let (recovered, report) = DurableEngine::open(&crashed, engine, chaos_cfg())
        .unwrap_or_else(|e| panic!("seed {seed:#x}: crash recovery failed: {e}"));
    assert!(
        report.last_lsn >= durable,
        "seed {seed:#x}: crash lost durable update {durable} (recovered {})",
        report.last_lsn
    );
    assert!(
        (report.last_lsn as usize) < refs.len(),
        "seed {seed:#x}: recovery invented updates"
    );
    assert_eq!(
        snapshot(recovered.engine()),
        refs[report.last_lsn as usize],
        "seed {seed:#x}: recovered state is not the reference prefix at LSN {}",
        report.last_lsn
    );
    drop(recovered);
    std::fs::remove_dir_all(&crashed).unwrap();
}

fn chaos_seeds() -> Vec<u64> {
    match std::env::var("FIVM_CHAOS_SEEDS") {
        Ok(s) => s
            .split(',')
            .filter_map(|t| {
                let t = t.trim();
                t.strip_prefix("0x")
                    .map_or_else(|| t.parse().ok(), |h| u64::from_str_radix(h, 16).ok())
            })
            .collect(),
        Err(_) => vec![1, 2, 3, 0xC0FFEE, 0xDEAD_BEEF],
    }
}

fn chaos_run(seed: u64) {
    println!("chaos: seed {seed:#x}");
    let refs = chaos_references();
    let dir = scratch("chaos");
    let (q, engine) = chaos_fresh();
    let root = engine.tree().root;
    let mut gen = ScheduleGen::new(&q, &chaos_specs(), &chaos_sym_vars(&q));
    let vfs = FaultVfs::seeded(seed, 80, 25);
    vfs.set_enabled(false); // creation is fault-free; the storm starts after
    let mut d =
        DurableEngine::create_with_vfs(&dir, engine, chaos_cfg(), Arc::new(vfs.clone())).unwrap();
    let reader = d.reader();
    let sub = d.subscribe_bounded(root, 3).expect("root is materialized");
    vfs.set_enabled(true);

    // Bring the engine back from degraded mode, whatever the disk does.
    let heal = |d: &mut DurableEngine<i64>, vfs: &FaultVfs| {
        for attempt in 0u32.. {
            assert!(attempt < 50, "seed {seed:#x}: heal never succeeded");
            vfs.unfreeze(); // a frozen device counts as replaced hardware
            if attempt >= 5 {
                vfs.set_enabled(false); // stop the storm: heal must then land
            }
            match d.try_heal() {
                Ok(h) if h.healed => break,
                Ok(_) | Err(_) => continue,
            }
        }
        vfs.set_enabled(true);
    };

    let mut k = 0u64; // applied (acked) updates
    let mut crash_checked = [false, false];
    while let Some((rel, delta)) = gen.next_batch(&q.catalog) {
        loop {
            let before = d.last_lsn();
            assert_eq!(before, k, "seed {seed:#x}: ack count drifted");
            match d.apply(rel, &Delta::Flat(delta.clone())) {
                Ok(()) => {
                    assert_eq!(d.last_lsn(), before + 1, "seed {seed:#x}");
                    k += 1;
                    if d.is_degraded() {
                        // Ack-boundary fsync failed: acked, not durable.
                        assert!(d.durable_lsn() < k, "seed {seed:#x}");
                        heal(&mut d, &vfs);
                    }
                    break;
                }
                Err(fivm::durability::DurabilityError::Degraded {
                    durable_lsn,
                    last_lsn,
                    ..
                }) => {
                    assert_eq!(
                        last_lsn, before,
                        "seed {seed:#x}: a rejected apply must not count"
                    );
                    assert_eq!(durable_lsn, d.durable_lsn(), "seed {seed:#x}");
                    assert!(d.is_degraded());
                    assert!(d.degraded_cause().is_some());
                    // Degraded serving: pins and publishes keep working.
                    let pinned = reader.pin().lsn();
                    assert!(pinned <= before, "seed {seed:#x}");
                    assert_eq!(d.publish().lsn(), before, "seed {seed:#x}");
                    heal(&mut d, &vfs);
                    // retry the same update — nothing may be lost or doubled
                }
                Err(other) => {
                    panic!("seed {seed:#x}: apply surfaced a non-degraded error: {other}")
                }
            }
        }
        assert!(
            d.durable_lsn() <= d.last_lsn(),
            "seed {seed:#x}: watermark ran ahead of acks"
        );
        if k.is_multiple_of(5) {
            let snap = d.publish();
            assert_eq!(snap.lsn(), k, "seed {seed:#x}");
            let _ = sub.drain(); // lag markers are fine under chaos
        }
        for (slot, at) in [(0usize, N_CHAOS as u64 / 3), (1, 2 * N_CHAOS as u64 / 3)] {
            if k == at && !crash_checked[slot] {
                crash_checked[slot] = true;
                chaos_crash_check(&dir, &d, &refs, seed);
            }
        }
    }

    // The storm passes: heal if needed, then converge and compare
    // byte-identically against the fault-free reference.
    vfs.set_enabled(false);
    vfs.unfreeze();
    if d.is_degraded() {
        let h = d
            .try_heal()
            .unwrap_or_else(|e| panic!("seed {seed:#x}: final heal: {e}"));
        assert!(h.healed, "seed {seed:#x}");
    }
    d.sync_all().unwrap();
    assert_eq!(d.last_lsn(), N_CHAOS as u64, "seed {seed:#x}");
    assert_eq!(d.durable_lsn(), N_CHAOS as u64, "seed {seed:#x}");
    assert_eq!(
        snapshot(d.engine()),
        refs[N_CHAOS],
        "seed {seed:#x}: live state diverged from the fault-free reference"
    );
    drop(d);
    let (_q2, engine2) = chaos_fresh();
    let (recovered, report) = DurableEngine::open(&dir, engine2, chaos_cfg())
        .unwrap_or_else(|e| panic!("seed {seed:#x}: final recovery: {e}"));
    assert_eq!(report.last_lsn, N_CHAOS as u64, "seed {seed:#x}");
    assert_eq!(
        snapshot(recovered.engine()),
        refs[N_CHAOS],
        "seed {seed:#x}: recovered state diverged from the fault-free reference"
    );
    drop(recovered);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The tentpole proof: randomized fault schedules (seeds from
/// `FIVM_CHAOS_SEEDS`, comma-separated, or a fixed default matrix) at
/// every Vfs call site. No panic; every `durable_lsn()` survives a
/// crash; the healed engine converges byte-identical to a fault-free
/// reference. Failures print the seed for replay.
#[test]
fn seeded_chaos_schedules_survive_and_converge() {
    for seed in chaos_seeds() {
        chaos_run(seed);
    }
}
