//! Reader/writer stress over the epoch-snapshot serving layer.
//!
//! One writer thread drives a randomized `ScheduleGen` schedule through
//! a [`ServingEngine`] (publishing after every update) while K reader
//! threads continuously pin epochs and probe them. The invariant under
//! test is **snapshot consistency**: every pinned epoch must equal —
//! byte-identically, on every materialized view — an uninterrupted
//! reference engine that applied exactly the first `lsn()` updates of
//! the same schedule. A torn snapshot (some views ahead of others, or a
//! view captured mid-update) has no matching prefix and fails loudly.
//!
//! Epochs must also be monotonic per reader, and the root view of every
//! pin must match the differential oracle at that prefix. The sweep
//! runs at 1, 2, 4 and 8 readers against a sequential writer and a
//! 4-worker writer; CI additionally repeats the suite under
//! `FIVM_WORKERS=4` (engines default to that setting).

#[path = "support/oracle.rs"]
mod oracle;

use fivm::prelude::*;
use oracle::{canon_engine_result, oracle_eval, BatchSpec, OracleDb, ScheduleGen};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};

const N_UPDATES: usize = 60;

/// All materialized views, sorted — the equality witness per prefix.
type Snapshot = Vec<(usize, Vec<(Tuple, i64)>)>;

fn specs() -> Vec<BatchSpec> {
    (0..N_UPDATES)
        .map(|i| BatchSpec {
            rel: i % 3,
            size_exp: (i as u32 * 7 + 1) % 5,
            jitter: (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            seed: 0x5EED_0000 + i as u64,
        })
        .collect()
}

fn fresh() -> (QueryDef, IvmEngine<i64>) {
    let q = QueryDef::example_rst(&["A"]);
    let vo = VariableOrder::parse("A - { B, C - { D, E } }", &q.catalog);
    let mut tree = ViewTree::build(&q, &vo);
    add_indicators(&mut tree, &q);
    let engine = IvmEngine::new(q.clone(), tree, &[0, 1, 2], LiftingMap::new());
    (q, engine)
}

fn sym_vars(q: &QueryDef) -> Vec<VarId> {
    vec![
        q.catalog.lookup("B").unwrap(),
        q.catalog.lookup("E").unwrap(),
    ]
}

fn materialized_snapshot(
    nodes: &[usize],
    view: impl Fn(usize) -> Option<Relation<i64>>,
) -> Snapshot {
    nodes
        .iter()
        .map(|&n| (n, view(n).expect("materialized node").sorted()))
        .collect()
}

/// Reference state after every prefix: `refs[k]` is the full view state
/// (plus the oracle's canonical root result) after exactly `k` updates.
fn references(
    q: &QueryDef,
) -> (
    Vec<Snapshot>,
    Vec<std::collections::BTreeMap<Vec<i64>, i64>>,
) {
    let (_, mut engine) = fresh();
    let mut db: OracleDb = q.relations.iter().map(|_| HashMap::new()).collect();
    let mut live: Vec<Vec<Vec<i64>>> = q.relations.iter().map(|_| Vec::new()).collect();
    let nodes = engine.materialized_nodes();
    let mut snaps = vec![materialized_snapshot(&nodes, |n| engine.view_relation(n))];
    let mut roots = vec![oracle_eval(q, &db, &[])];
    // Mirror the schedule into the oracle db by regenerating the exact
    // same batches (build_batch mutates db as it emits pairs).
    let kinds: Vec<Vec<oracle::ColKind>> = (0..q.relations.len())
        .map(|rel| oracle::col_kinds(q, rel, &sym_vars(q)))
        .collect();
    for spec in specs() {
        let rel = spec.rel % q.relations.len();
        let pairs = oracle::build_batch_with_cols(
            &spec,
            &kinds[rel],
            &q.catalog,
            &mut db[rel],
            &mut live[rel],
        );
        let delta = Relation::from_pairs(q.relations[rel].schema.clone(), pairs);
        engine.apply(rel, &Delta::Flat(delta));
        snaps.push(materialized_snapshot(&nodes, |n| engine.view_relation(n)));
        roots.push(oracle_eval(q, &db, &[]));
    }
    (snaps, roots)
}

/// Drive the schedule through a serving engine with `readers` pinning
/// concurrently; every pin must equal the reference at its exact LSN.
fn run_stress(readers: usize, workers: Option<usize>) {
    let (q, mut engine) = fresh();
    if let Some(w) = workers {
        engine.set_workers(w);
        engine.set_parallel_threshold(64);
    }
    let (refs, root_refs) = references(&q);
    let nodes = engine.materialized_nodes();
    let mut serving = ServingEngine::new(engine).with_publish_every(1);
    let mut gen = ScheduleGen::new(&q, &specs(), &sym_vars(&q));
    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for _ in 0..readers {
            let reader = serving.reader();
            let refs = &refs;
            let root_refs = &root_refs;
            let nodes = &nodes;
            let q = &q;
            let stop = &stop;
            handles.push(scope.spawn(move || {
                let mut last_epoch = 0u64;
                let mut pins = 0usize;
                loop {
                    let done = stop.load(Ordering::Acquire);
                    let snap = reader.pin();
                    assert!(
                        snap.epoch() >= last_epoch,
                        "epochs went backwards: {} after {last_epoch}",
                        snap.epoch()
                    );
                    last_epoch = snap.epoch();
                    let lsn = snap.lsn() as usize;
                    assert!(lsn < refs.len(), "pinned LSN {lsn} beyond the schedule");
                    let got =
                        materialized_snapshot(nodes, |n| snap.view(n).map(|v| v.to_relation()));
                    assert_eq!(
                        got, refs[lsn],
                        "pinned epoch {last_epoch} is not the prefix at LSN {lsn} — torn snapshot"
                    );
                    assert_eq!(
                        &canon_engine_result(q, &snap.result()),
                        &root_refs[lsn],
                        "root view at LSN {lsn} diverges from the oracle"
                    );
                    pins += 1;
                    if done {
                        break;
                    }
                }
                pins
            }));
        }
        while let Some((rel, delta)) = gen.next_batch(&q.catalog) {
            serving.apply(rel, &Delta::Flat(delta));
        }
        stop.store(true, Ordering::Release);
        for h in handles {
            let pins = h.join().expect("reader panicked (snapshot violation)");
            assert!(pins > 0, "reader never pinned an epoch");
        }
    });
    // The final epoch is the full schedule.
    let final_snap = serving.reader().pin();
    assert_eq!(final_snap.lsn(), N_UPDATES as u64);
    assert_eq!(
        materialized_snapshot(&nodes, |n| final_snap.view(n).map(|v| v.to_relation())),
        refs[N_UPDATES]
    );
}

#[test]
fn one_reader_never_sees_a_torn_snapshot() {
    run_stress(1, None);
}

#[test]
fn two_readers_never_see_a_torn_snapshot() {
    run_stress(2, None);
}

#[test]
fn four_readers_never_see_a_torn_snapshot() {
    run_stress(4, None);
}

#[test]
fn eight_readers_never_see_a_torn_snapshot() {
    run_stress(8, None);
}

/// The writer's parallel delta propagation (4 workers) must not leak
/// intermediate merge state into published epochs.
#[test]
fn four_readers_against_a_four_worker_writer() {
    run_stress(4, Some(4));
}

/// Pin-leak observability: `ServingStats` tracks exactly the epochs
/// still pinned somewhere. Transient readers never push the live-epoch
/// count past `pins held + current`, a wedged reader shows up as a
/// growing `oldest_pinned_age`, and releasing it drains the count back
/// to one — retired epochs are freed, not accumulated.
#[test]
fn serving_stats_stay_bounded_under_pin_churn() {
    let (q, engine) = fresh();
    let mut serving = ServingEngine::new(engine).with_publish_every(1);
    let mut gen = ScheduleGen::new(&q, &specs(), &sym_vars(&q));
    let mut wedged: Option<std::sync::Arc<EngineSnapshot<i64>>> = None;
    let mut wedged_epoch = 0u64;
    let mut applied = 0usize;
    let reader = serving.reader();
    while let Some((rel, delta)) = gen.next_batch(&q.catalog) {
        serving.apply(rel, &Delta::Flat(delta));
        applied += 1;
        if applied == N_UPDATES / 3 {
            let snap = reader.pin();
            wedged_epoch = snap.epoch();
            wedged = Some(snap); // a consumer that stopped progressing
        }
        if applied == 2 * N_UPDATES / 3 {
            wedged = None; // the wedged consumer finally lets go
        }
        // A transient pin, dropped immediately — the common case.
        let transient = reader.pin();
        assert_eq!(transient.lsn(), applied as u64);
        drop(transient);

        let stats = serving.serving_stats();
        let held = usize::from(wedged.is_some());
        assert!(
            stats.live_epochs <= held + 1,
            "after update {applied}: {} live epochs with {held} pins held — \
             retired epochs are leaking",
            stats.live_epochs
        );
        if wedged.is_some() {
            assert_eq!(stats.oldest_live_epoch, Some(wedged_epoch));
            assert_eq!(
                stats.oldest_pinned_age,
                stats.current_epoch - wedged_epoch,
                "wedged reader must be visible as pinned age"
            );
        } else {
            assert_eq!(
                stats.oldest_pinned_age, 0,
                "no pins held, yet stats report a pinned epoch"
            );
        }
    }
    let stats = serving.serving_stats();
    assert_eq!(stats.live_epochs, 1, "only the current epoch stays live");
    assert_eq!(stats.current_epoch, N_UPDATES as u64);
}
