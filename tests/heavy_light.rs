//! Differential tests for the IVM^ε heavy/light triangle engine: the
//! partitioned path must agree with the classical indicator-projected
//! engine (sequential *and* with a 4-worker pool) and with the
//! code-independent from-scratch oracle (`tests/support/oracle.rs`) on
//! randomized Zipf-skewed insert/delete schedules — including schedules
//! that force repeated heavy↔light migrations and deletions that empty
//! heavy keys — with the engine's internal-consistency checker
//! (partition assignments, degrees, auxiliary views, total) run along
//! the way.

#[path = "support/oracle.rs"]
mod support;

use fivm::prelude::*;
use fivm_data::zipf::Zipf;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The partitioned engine and its two classical foils (1 and 4
/// workers), fed identical single-tuple updates.
struct Harness {
    q: QueryDef,
    hl: TriangleHlEngine<i64>,
    classical: [IvmEngine<i64>; 2],
    db: support::OracleDb,
    steps: usize,
}

impl Harness {
    fn new(cfg: HlConfig) -> Harness {
        let q = QueryDef::triangle();
        let vo = VariableOrder::parse("A - B - C", &q.catalog);
        let mut tree = ViewTree::build(&q, &vo);
        add_indicators(&mut tree, &q);
        let classical = [1usize, 4].map(|w| {
            let mut e: IvmEngine<i64> =
                IvmEngine::new(q.clone(), tree.clone(), &[0, 1, 2], LiftingMap::new());
            e.set_workers(w);
            e.set_parallel_threshold(1);
            e
        });
        let hl = TriangleHlEngine::new(q.clone(), cfg).unwrap();
        Harness {
            q,
            hl,
            classical,
            db: vec![Default::default(); 3],
            steps: 0,
        }
    }

    fn apply(&mut self, rel: usize, a: i64, b: i64, m: i64) {
        let t = Tuple::new(vec![Value::Int(a), Value::Int(b)]);
        self.hl.apply_update(rel, &t, m);
        let d = Relation::from_pairs(self.q.relations[rel].schema.clone(), [(t, m)]);
        for e in &mut self.classical {
            e.apply(rel, &Delta::Flat(d.clone()));
        }
        let row = self.db[rel].entry(vec![a, b]).or_insert(0);
        *row += m;
        if *row == 0 {
            self.db[rel].remove([a, b].as_slice());
        }
        self.steps += 1;
        // Every step: the partitioned total must equal both classical
        // engines' results byte-for-byte (same unit-keyed relation).
        let hl_result = self.hl.result();
        for (w, e) in self.classical.iter().enumerate() {
            assert_eq!(
                hl_result,
                e.result(),
                "partitioned vs classical (workers variant {w}) at step {}",
                self.steps
            );
        }
        // Periodically: internal invariants + the from-scratch oracle.
        if self.steps.is_multiple_of(64) {
            self.check_deep();
        }
    }

    fn check_deep(&self) {
        self.hl.verify_consistency().unwrap_or_else(|e| {
            panic!("consistency violated at step {}: {e}", self.steps);
        });
        let oracle = support::oracle_eval(&self.q, &self.db, &[]);
        let expect = oracle.get(&Vec::new()).copied().unwrap_or(0);
        assert_eq!(
            *self.hl.total(),
            expect,
            "oracle disagrees at step {}",
            self.steps
        );
    }
}

/// Randomized Zipf(s) schedules: skewed inserts with interleaved
/// deletions of random live tuples. The small node domain plus the
/// skew pushes hub keys far past the promotion bound while deletions
/// drag others back below the demotion bound.
fn run_zipf_schedule(seed: u64, exponent: f64, steps: usize, delete_fraction: f64) -> HlStats {
    // ε = 0.4 keeps θ (and so the promotion bound 2θ) low enough that
    // the hub keys of a skewed 30-node domain genuinely cross it.
    let mut h = Harness::new(HlConfig {
        epsilon: 0.4,
        min_theta: 2,
    });
    let zipf = Zipf::new(30, exponent);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut live: Vec<(usize, i64, i64)> = Vec::new();
    for _ in 0..steps {
        if !live.is_empty() && rng.gen_bool(delete_fraction) {
            let i = rng.gen_range(0..live.len());
            let (rel, a, b) = live.swap_remove(i);
            h.apply(rel, a, b, -1);
        } else {
            let rel = rng.gen_range(0..3usize);
            let a = zipf.sample(&mut rng) as i64;
            let b = zipf.sample(&mut rng) as i64;
            h.apply(rel, a, b, 1);
            live.push((rel, a, b));
        }
    }
    h.check_deep();
    h.hl.stats()
}

#[test]
fn zipf_schedules_agree_with_classical_and_oracle() {
    for seed in [1u64, 7, 0xC0FFEE] {
        let stats = run_zipf_schedule(seed, 1.5, 1_000, 0.25);
        assert!(
            stats.promotions > 0,
            "skewed schedule never promoted a key (seed {seed}): \
             not exercising the heavy path"
        );
    }
}

#[test]
fn near_uniform_schedule_agrees_too() {
    // s = 0.3: barely skewed — exercises the light/light paths and the
    // lazy re-thresholding as N grows, with a low promotion rate.
    run_zipf_schedule(11, 0.3, 600, 0.20);
}

/// Deletions that empty heavy keys: build a hub past the promotion
/// bound, then delete *all* of its tuples; the key must demote on the
/// way down and leave no residue in stores, degrees or auxiliary
/// views. Repeated across rounds so the same key oscillates
/// heavy→light→heavy.
#[test]
fn deletions_empty_heavy_keys() {
    let mut h = Harness::new(HlConfig {
        epsilon: 0.5,
        min_theta: 2,
    });
    // Standing S/T edges so the hub's R-edges actually close triangles.
    for i in 0..12 {
        h.apply(1, i, i + 50, 1); // S(i, i+50)
        h.apply(2, i + 50, 0, 1); // T(i+50, 0)
    }
    for round in 0..4 {
        for i in 0..24 {
            h.apply(0, 0, i, 1); // R(0, i): hub degree ramps to 24
        }
        assert!(
            h.hl.is_heavy(0, &Value::Int(0)),
            "hub not promoted in round {round}"
        );
        h.check_deep();
        for i in 0..24 {
            h.apply(0, 0, i, -1); // and back to zero
        }
        assert!(
            !h.hl.is_heavy(0, &Value::Int(0)),
            "emptied hub still heavy in round {round}"
        );
        assert_eq!(h.hl.degree(0, &Value::Int(0)), 0);
        h.check_deep();
    }
    let stats = h.hl.stats();
    assert!(stats.promotions >= 4 && stats.demotions >= 4);
    assert!(stats.tuples_migrated > 0);
}

/// The closed aggregate is ring-generic: the same schedule maintained
/// over i64 COUNT and over a multiplicity-weighted variant (payloads
/// > 1) stays exact under mixed-sign updates.
#[test]
fn weighted_payloads_roundtrip() {
    let mut hl = TriangleHlEngine::<i64>::new(QueryDef::triangle(), HlConfig::default()).unwrap();
    let mut rng = SmallRng::seed_from_u64(99);
    let mut applied: Vec<(usize, i64, i64, i64)> = Vec::new();
    for _ in 0..300 {
        let rel = rng.gen_range(0..3usize);
        let a = rng.gen_range(0..12i64);
        let b = rng.gen_range(0..12i64);
        let m = rng.gen_range(1..4i64);
        hl.apply_update(rel, &Tuple::new(vec![Value::Int(a), Value::Int(b)]), m);
        applied.push((rel, a, b, m));
    }
    hl.verify_consistency().unwrap();
    // Undo everything in a shuffled order: exact cancellation.
    for i in (1..applied.len()).rev() {
        let j = rng.gen_range(0..=i);
        applied.swap(i, j);
    }
    for (rel, a, b, m) in applied {
        hl.apply_update(rel, &Tuple::new(vec![Value::Int(a), Value::Int(b)]), -m);
    }
    assert_eq!(*hl.total(), 0);
    assert_eq!(hl.tuple_count(), 0);
    hl.verify_consistency().unwrap();
}
