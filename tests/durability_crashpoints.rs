//! Fault-injection harness for the durability layer.
//!
//! A deterministic schedule (see `support/oracle.rs`'s `ScheduleGen`)
//! is streamed through a write-ahead-logged engine with periodic
//! incremental checkpoints. The resulting directory is then damaged in
//! every way the torn-write/corruption model admits — the log cut at
//! **every byte boundary of the final record**, bits flipped, the
//! newest checkpoint dropped or left half-written, a checkpoint killed
//! between its view files and its manifest — and recovery must come
//! back **byte-identical on every materialized view** to an
//! uninterrupted reference engine that applied exactly the surviving
//! prefix of updates. Corruption that cannot be safely truncated (a
//! damaged record in the middle of the log, a missing log prefix) must
//! be a clean error, never a panic and never a silently wrong view.
//!
//! Engines default to the session's `FIVM_WORKERS` setting, so CI runs
//! this suite both sequentially and at 4 workers; an explicit 4-worker
//! test keeps the parallel path covered in default runs too. The i64
//! ring is exact, so parallel determinism (PR 3) makes "byte-identical"
//! well-defined at any worker count.

#[path = "support/oracle.rs"]
mod oracle;

use fivm::durability::wal;
use fivm::prelude::*;
use oracle::{BatchSpec, ScheduleGen};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const N_UPDATES: usize = 25;
const CHECKPOINT_EVERY: u64 = 7;

/// All materialized views, sorted — the byte-identity witness.
type Snapshot = Vec<(usize, Vec<(Tuple, i64)>)>;

fn specs() -> Vec<BatchSpec> {
    (0..N_UPDATES)
        .map(|i| BatchSpec {
            rel: i % 3,
            // Small final batch keeps the every-byte-boundary sweep
            // cheap without losing generality.
            size_exp: if i + 1 == N_UPDATES {
                1
            } else {
                (i as u32 * 5 + 2) % 4
            },
            jitter: (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            seed: 0xC0FF_EE00 + i as u64,
        })
        .collect()
}

/// Fresh engine over the running-example query with indicators (so
/// recovery's indicator-count rebuild is on the hook too).
fn fresh(workers: Option<usize>) -> (QueryDef, IvmEngine<i64>) {
    let q = QueryDef::example_rst(&["A"]);
    let vo = VariableOrder::parse("A - { B, C - { D, E } }", &q.catalog);
    let mut tree = ViewTree::build(&q, &vo);
    add_indicators(&mut tree, &q);
    let mut engine = IvmEngine::new(q.clone(), tree, &[0, 1, 2], LiftingMap::new());
    if let Some(w) = workers {
        engine.set_workers(w);
    }
    (q, engine)
}

fn sym_vars(q: &QueryDef) -> Vec<VarId> {
    vec![
        q.catalog.lookup("B").unwrap(),
        q.catalog.lookup("E").unwrap(),
    ]
}

fn cfg() -> DurabilityConfig {
    DurabilityConfig {
        checkpoint_every: CHECKPOINT_EVERY,
        segment_bytes: 2048,
        retained_checkpoints: 2,
        ..DurabilityConfig::default()
    }
}

fn snapshot(e: &IvmEngine<i64>) -> Snapshot {
    e.materialized_nodes()
        .into_iter()
        .map(|n| (n, e.view_relation(n).unwrap().sorted()))
        .collect()
}

/// Run the full schedule through a durable engine into `dir`.
fn run_durable(dir: &Path, workers: Option<usize>) {
    run_durable_cfg(dir, workers, cfg());
}

fn run_durable_cfg(dir: &Path, workers: Option<usize>, cfg: DurabilityConfig) {
    let (q, engine) = fresh(workers);
    let mut gen = ScheduleGen::new(&q, &specs(), &sym_vars(&q));
    let mut d = DurableEngine::create(dir, engine, cfg).unwrap();
    while let Some((rel, delta)) = gen.next_batch(&q.catalog) {
        d.apply(rel, &Delta::Flat(delta)).unwrap();
    }
    d.sync_all().unwrap();
}

/// Reference snapshots: `out[k]` is the state after applying exactly
/// the first `k` updates on an uninterrupted engine.
fn reference_snapshots(workers: Option<usize>) -> Vec<Snapshot> {
    let (q, mut engine) = fresh(workers);
    let mut gen = ScheduleGen::new(&q, &specs(), &sym_vars(&q));
    let mut out = vec![snapshot(&engine)];
    while let Some((rel, delta)) = gen.next_batch(&q.catalog) {
        engine.apply(rel, &Delta::Flat(delta));
        out.push(snapshot(&engine));
    }
    out
}

/// Recover from `dir` into a brand-new engine (fresh catalog — the
/// restart simulation) and assert every materialized view equals the
/// reference at the recovered LSN.
fn recover_and_check(dir: &Path, refs: &[Snapshot], workers: Option<usize>) -> RecoveryReport {
    let (_q2, engine) = fresh(workers);
    let (recovered, report) =
        DurableEngine::open(dir, engine, cfg()).expect("recovery must succeed");
    let got = snapshot(recovered.engine());
    assert_eq!(
        got, refs[report.last_lsn as usize],
        "recovered views diverge from the reference at LSN {}",
        report.last_lsn
    );
    report
}

fn scratch(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "fivm-crashpoints-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn copy_dir(src: &Path, dst: &Path) {
    std::fs::create_dir_all(dst).unwrap();
    for entry in std::fs::read_dir(src).unwrap() {
        let p = entry.unwrap().path();
        std::fs::copy(&p, dst.join(p.file_name().unwrap())).unwrap();
    }
}

/// Byte span (offset, len) of the final record of the final segment.
fn final_record_span(dir: &Path) -> (PathBuf, u64, u64) {
    let segments = wal::list_segments(dir).unwrap();
    let last = segments.last().expect("log has segments").path.clone();
    let spans = wal::frame_spans(&last).unwrap();
    let &(off, len) = spans.last().expect("final segment has records");
    (last, off, len)
}

#[test]
fn cut_at_every_byte_boundary_of_final_record() {
    let base = scratch("cuts");
    run_durable(&base, None);
    let refs = reference_snapshots(None);
    let (seg, off, len) = final_record_span(&base);
    let seg_name = seg.file_name().unwrap().to_owned();
    let n = N_UPDATES as u64;

    for cut in off..=off + len {
        let dir = scratch("cut-case");
        copy_dir(&base, &dir);
        std::fs::OpenOptions::new()
            .write(true)
            .open(dir.join(&seg_name))
            .unwrap()
            .set_len(cut)
            .unwrap();
        let report = recover_and_check(&dir, &refs, None);
        let expect = if cut == off + len { n } else { n - 1 };
        assert_eq!(
            report.last_lsn,
            expect,
            "cut at byte {cut} (record spans {off}..{})",
            off + len
        );
        if cut > off && cut < off + len {
            // A cut exactly at `off` leaves a valid record boundary —
            // nothing to truncate. Any cut *inside* the record must be.
            assert!(report.truncated_bytes > 0, "torn tail must be truncated");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
    std::fs::remove_dir_all(&base).unwrap();
}

#[test]
fn bit_flips_in_final_record_are_detected_and_truncated() {
    let base = scratch("flips");
    run_durable(&base, None);
    let refs = reference_snapshots(None);
    let (seg, off, len) = final_record_span(&base);
    let seg_name = seg.file_name().unwrap().to_owned();

    for byte in 0..len {
        let dir = scratch("flip-case");
        copy_dir(&base, &dir);
        let path = dir.join(&seg_name);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[(off + byte) as usize] ^= 1 << (byte % 8);
        std::fs::write(&path, &bytes).unwrap();
        let report = recover_and_check(&dir, &refs, None);
        assert_eq!(
            report.last_lsn,
            N_UPDATES as u64 - 1,
            "flip at record byte {byte} must drop exactly the final record"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
    std::fs::remove_dir_all(&base).unwrap();
}

#[test]
fn corruption_mid_log_is_a_clean_error() {
    let base = scratch("midlog");
    // Tiny segments and no auto-checkpoints: recovery must replay the
    // whole multi-segment log, so a damaged middle segment is always on
    // the replay path (with checkpoints, replay starts past it).
    let midlog_cfg = DurabilityConfig {
        checkpoint_every: 0,
        segment_bytes: 512,
        ..DurabilityConfig::default()
    };
    run_durable_cfg(&base, None, midlog_cfg.clone());
    let segments = wal::list_segments(&base).unwrap();
    assert!(segments.len() >= 2, "schedule must span multiple segments");
    // Damage a record in a non-final segment: recovery cannot truncate
    // (later records exist) so it must refuse — with an error, not a
    // panic, and not a silently shortened replay.
    let victim = &segments[segments.len() - 2];
    let spans = wal::frame_spans(&victim.path).unwrap();
    let &(off, len) = spans.first().unwrap();
    let mut bytes = std::fs::read(&victim.path).unwrap();
    bytes[(off + len / 2) as usize] ^= 0x10;
    std::fs::write(&victim.path, &bytes).unwrap();

    let (_q2, engine) = fresh(None);
    let result = DurableEngine::open(&base, engine, midlog_cfg);
    assert!(result.is_err(), "mid-log corruption must be rejected");
    std::fs::remove_dir_all(&base).unwrap();
}

#[test]
fn dropped_newest_checkpoint_recovers_from_previous() {
    let base = scratch("dropckpt");
    run_durable(&base, None);
    let refs = reference_snapshots(None);
    let manifests = fivm::durability::checkpoint::list_manifests(&base).unwrap();
    assert_eq!(manifests.len(), 2, "two checkpoints retained");
    std::fs::remove_file(&manifests.last().unwrap().path).unwrap();

    let report = recover_and_check(&base, &refs, None);
    assert_eq!(
        report.last_lsn, N_UPDATES as u64,
        "full state via longer tail"
    );
    assert_eq!(report.checkpoint_seq, Some(manifests[0].seq));
    std::fs::remove_dir_all(&base).unwrap();
}

#[test]
fn all_checkpoints_lost_with_truncated_log_is_a_clean_error() {
    let base = scratch("allckpt");
    run_durable(&base, None);
    // Log segments before the oldest retained checkpoint were
    // truncated, so with every manifest gone there is no consistent
    // state to rebuild — recovery must say so, not guess.
    for m in fivm::durability::checkpoint::list_manifests(&base).unwrap() {
        std::fs::remove_file(&m.path).unwrap();
    }
    let (_q2, engine) = fresh(None);
    let result = DurableEngine::open(&base, engine, cfg());
    assert!(result.is_err(), "missing log prefix must be rejected");
    std::fs::remove_dir_all(&base).unwrap();
}

#[test]
fn partial_newest_checkpoint_falls_back() {
    let base = scratch("partial");
    run_durable(&base, None);
    let refs = reference_snapshots(None);

    // Case 1: manifest half-written (kill during the manifest write —
    // possible only before the atomic rename, but a torn rename target
    // must be tolerated identically).
    let dir1 = scratch("partial-man");
    copy_dir(&base, &dir1);
    let manifests = fivm::durability::checkpoint::list_manifests(&dir1).unwrap();
    let newest = manifests.last().unwrap();
    let size = std::fs::metadata(&newest.path).unwrap().len();
    std::fs::OpenOptions::new()
        .write(true)
        .open(&newest.path)
        .unwrap()
        .set_len(size / 2)
        .unwrap();
    let report = recover_and_check(&dir1, &refs, None);
    assert_eq!(report.last_lsn, N_UPDATES as u64);
    assert_eq!(report.manifests_skipped, 1);
    std::fs::remove_dir_all(&dir1).unwrap();

    // Case 2: a view file the newest manifest references is torn.
    let dir2 = scratch("partial-view");
    copy_dir(&base, &dir2);
    let manifests = fivm::durability::checkpoint::list_manifests(&dir2).unwrap();
    let m = fivm::durability::checkpoint::read_manifest(&manifests.last().unwrap().path).unwrap();
    // Pick a view file not shared with the previous manifest.
    let prev = fivm::durability::checkpoint::read_manifest(&manifests[0].path).unwrap();
    let &(node, file_seq) = m
        .views
        .iter()
        .find(|v| !prev.views.contains(v))
        .expect("newest checkpoint rewrote at least one view");
    let vpath = fivm::durability::checkpoint::view_file_path(&dir2, node, file_seq);
    let size = std::fs::metadata(&vpath).unwrap().len();
    std::fs::OpenOptions::new()
        .write(true)
        .open(&vpath)
        .unwrap()
        .set_len(size.saturating_sub(7))
        .unwrap();
    let report = recover_and_check(&dir2, &refs, None);
    assert_eq!(report.last_lsn, N_UPDATES as u64);
    assert_eq!(report.manifests_skipped, 1);
    std::fs::remove_dir_all(&dir2).unwrap();
    std::fs::remove_dir_all(&base).unwrap();
}

#[test]
fn kill_between_view_files_and_manifest_is_invisible() {
    let base = scratch("midckpt");
    run_durable(&base, None);
    let refs = reference_snapshots(None);
    // A checkpoint that died after writing view files but before the
    // manifest rename leaves stray view files and possibly a .tmp
    // manifest. Recovery must ignore both.
    std::fs::write(
        fivm::durability::checkpoint::view_file_path(&base, 0, 999_999),
        b"FIVMVIW1 partial garbage",
    )
    .unwrap();
    std::fs::write(base.join("ckpt-000099.tmp"), b"FIVMCKP1 torn").unwrap();
    let report = recover_and_check(&base, &refs, None);
    assert_eq!(report.last_lsn, N_UPDATES as u64);
    assert_eq!(report.manifests_skipped, 0);
    std::fs::remove_dir_all(&base).unwrap();
}

/// The same crash-point sweep on explicit 4-worker engines (sampled
/// boundaries plus both extremes): parallel propagation must recover
/// byte-identically too. In CI the whole suite additionally runs under
/// `FIVM_WORKERS=4`, which covers the full sweep at 4 workers.
#[test]
fn crash_points_recover_identically_with_four_workers() {
    let base = scratch("cuts4");
    run_durable(&base, Some(4));
    let refs = reference_snapshots(Some(4));
    let (seg, off, len) = final_record_span(&base);
    let seg_name = seg.file_name().unwrap().to_owned();
    let n = N_UPDATES as u64;

    let mut cuts: Vec<u64> = (off..=off + len).step_by(5).collect();
    cuts.push(off + len);
    cuts.push(off + 1);
    for cut in cuts {
        let dir = scratch("cut4-case");
        copy_dir(&base, &dir);
        std::fs::OpenOptions::new()
            .write(true)
            .open(dir.join(&seg_name))
            .unwrap()
            .set_len(cut)
            .unwrap();
        let report = recover_and_check(&dir, &refs, Some(4));
        let expect = if cut == off + len { n } else { n - 1 };
        assert_eq!(report.last_lsn, expect, "cut at byte {cut}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
    std::fs::remove_dir_all(&base).unwrap();
}

// ---------------------------------------------------------------------
// Sync-policy crash points: the fsync gap between acknowledgement and
// durability, and checkpoint GC against damaged retained checkpoints.
// ---------------------------------------------------------------------

const N_EXTRA: usize = 7;

/// A second, disjoint schedule appended after [`specs`] (fresh seeds;
/// deletes only ever target rows this schedule inserted, so combined
/// multiplicities stay non-negative).
fn extra_specs() -> Vec<BatchSpec> {
    (0..N_EXTRA)
        .map(|i| BatchSpec {
            rel: (i + 1) % 3,
            size_exp: (i as u32) % 3,
            jitter: (i as u64).wrapping_mul(0xD1B5_4A32_D192_ED03),
            seed: 0xBEEF_0000 + i as u64,
        })
        .collect()
}

/// Reference snapshots over `specs()` followed by `extra_specs()`.
fn reference_snapshots_extended(workers: Option<usize>) -> Vec<Snapshot> {
    let (q, mut engine) = fresh(workers);
    let mut out = vec![snapshot(&engine)];
    for s in [specs(), extra_specs()] {
        let mut gen = ScheduleGen::new(&q, &s, &sym_vars(&q));
        while let Some((rel, delta)) = gen.next_batch(&q.catalog) {
            engine.apply(rel, &Delta::Flat(delta));
            out.push(snapshot(&engine));
        }
    }
    out
}

/// `SyncPolicy::Batched` contract under the worst crash the model
/// admits: the process dies *between* the group-commit flush (bytes at
/// the OS) and the fsync (bytes on the platter), and the power then
/// fails. Everything at or below the engine's reported `durable_lsn`
/// must survive; the loss window must stay under `max_updates`.
#[test]
fn acked_durable_survives_loss_of_unsynced_tail() {
    let dir = scratch("batched");
    let refs = reference_snapshots(None);
    let (q, engine) = fresh(None);
    let mut gen = ScheduleGen::new(&q, &specs(), &sym_vars(&q));
    let batched = DurabilityConfig {
        checkpoint_every: 0,
        // No rotation: the batching cadence alone drives durability.
        segment_bytes: 1 << 20,
        sync: SyncPolicy::Batched {
            max_updates: 8,
            max_delay: std::time::Duration::from_secs(3600),
        },
        ..DurabilityConfig::default()
    };
    let mut d = DurableEngine::create(&dir, engine, batched.clone()).unwrap();
    while let Some((rel, delta)) = gen.next_batch(&q.catalog) {
        d.apply(rel, &Delta::Flat(delta)).unwrap();
        assert!(
            d.last_lsn() - d.durable_lsn() < 8,
            "ack window exceeded max_updates at LSN {}",
            d.last_lsn()
        );
    }
    let durable = d.durable_lsn();
    let n = N_UPDATES as u64;
    assert!(durable >= n - 7, "batching must sync at least every 8 acks");
    assert!(
        durable < n,
        "fixture: the schedule must end with an unsynced tail (25 % 8 != 0)"
    );
    let (seq, synced_len) = d.wal_durable_span();
    // Process kill: Drop flushes the group-commit buffer to the OS…
    drop(d);
    // …then power loss: the OS page cache never reaches the platter.
    // Cut the segment back to its fsynced prefix.
    let seg = wal::list_segments(&dir)
        .unwrap()
        .into_iter()
        .find(|s| s.seq == seq)
        .expect("current segment exists");
    std::fs::OpenOptions::new()
        .write(true)
        .open(&seg.path)
        .unwrap()
        .set_len(synced_len)
        .unwrap();

    let (_q2, engine2) = fresh(None);
    let (recovered, report) = DurableEngine::open(&dir, engine2, batched).unwrap();
    assert!(
        report.last_lsn >= durable,
        "acknowledged-durable updates were lost: recovered {} < durable {durable}",
        report.last_lsn
    );
    assert_eq!(
        snapshot(recovered.engine()),
        refs[report.last_lsn as usize],
        "recovered views diverge at LSN {}",
        report.last_lsn
    );
    drop(recovered);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A corrupt *retained* manifest must not wedge checkpointing: GC
/// treats it as unrestorable, purges it, and keeps the truncation
/// watermark anchored on manifests that actually restore. (The old GC
/// hard-errored on the first unreadable retained manifest, making
/// every subsequent checkpoint fail permanently.)
#[test]
fn gc_tolerates_corrupt_retained_manifest() {
    let dir = scratch("gccorrupt");
    let refs = reference_snapshots_extended(None);
    let (q, engine) = fresh(None);
    let mut d = DurableEngine::create(&dir, engine, cfg()).unwrap();
    let mut gen = ScheduleGen::new(&q, &specs(), &sym_vars(&q));
    while let Some((rel, delta)) = gen.next_batch(&q.catalog) {
        d.apply(rel, &Delta::Flat(delta)).unwrap();
    }
    // Truncate the newest retained manifest to half its size.
    let manifests = fivm::durability::checkpoint::list_manifests(&dir).unwrap();
    assert_eq!(manifests.len(), 2, "two checkpoints retained");
    let victim = manifests.last().unwrap().path.clone();
    let size = std::fs::metadata(&victim).unwrap().len();
    std::fs::OpenOptions::new()
        .write(true)
        .open(&victim)
        .unwrap()
        .set_len(size / 2)
        .unwrap();
    // The next auto-checkpoint runs GC over the damaged directory: it
    // must succeed and purge the corrupt manifest.
    let mut gen2 = ScheduleGen::new(&q, &extra_specs(), &sym_vars(&q));
    while let Some((rel, delta)) = gen2.next_batch(&q.catalog) {
        d.apply(rel, &Delta::Flat(delta))
            .expect("checkpoint GC must survive a corrupt retained manifest");
    }
    d.sync_all().unwrap();
    let total = d.last_lsn();
    drop(d);
    let remaining = fivm::durability::checkpoint::list_manifests(&dir).unwrap();
    assert!(
        remaining
            .iter()
            .all(|m| fivm::durability::checkpoint::read_manifest(&m.path).is_ok()),
        "the corrupt manifest must be gone after GC"
    );
    let (_q2, engine2) = fresh(None);
    let (recovered, report) = DurableEngine::open(&dir, engine2, cfg()).unwrap();
    assert_eq!(report.last_lsn, total);
    assert_eq!(snapshot(recovered.engine()), refs[total as usize]);
    drop(recovered);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Satellite sweep for checkpoint atomicity: inject a storage fault at
/// **every Vfs operation** a checkpoint performs (EIO, ENOSPC and
/// fsync-failure rotate across indices) and assert that no fault can
/// cost recoverability: the previously committed checkpoint remains
/// restorable, GC never truncates WAL segments that checkpoint still
/// needs, and the full durable prefix recovers — from the directory
/// exactly as the fault left it, and again after the engine repairs
/// itself (deferred-checkpoint retry, or heal when the fault hit the
/// WAL-sync half).
#[test]
fn fault_at_every_vfs_call_inside_checkpoint_is_survivable() {
    let refs = reference_snapshots(None);
    let n = N_UPDATES as u64;
    let sweep_cfg = DurabilityConfig {
        // One retry would mask single one-shot faults.
        max_retries: 0,
        retry_backoff: std::time::Duration::ZERO,
        ..cfg()
    };
    // Everything below replays the same deterministic schedule, so the
    // operation indices measured here line up across runs.
    let run = |dir: &Path, vfs: &FaultVfs| -> DurableEngine<i64> {
        let (q, engine) = fresh(None);
        let mut gen = ScheduleGen::new(&q, &specs(), &sym_vars(&q));
        let mut d =
            DurableEngine::create_with_vfs(dir, engine, sweep_cfg.clone(), Arc::new(vfs.clone()))
                .unwrap();
        while let Some((rel, delta)) = gen.next_batch(&q.catalog) {
            d.apply(rel, &Delta::Flat(delta)).unwrap();
        }
        d.sync_all().unwrap();
        d
    };

    // Baseline: count the Vfs operations one manual checkpoint makes.
    let base = scratch("ckptsweep-base");
    let base_vfs = FaultVfs::new();
    let mut d = run(&base, &base_vfs);
    let before = base_vfs.op_count();
    d.checkpoint().unwrap();
    let ckpt_ops = base_vfs.op_count() - before;
    assert!(ckpt_ops > 10, "fixture: a checkpoint is many Vfs calls");
    drop(d);
    std::fs::remove_dir_all(&base).unwrap();

    for i in 0..ckpt_ops {
        let kind = match i % 3 {
            0 => FaultKind::Eio,
            1 => FaultKind::Enospc,
            _ => FaultKind::SyncFail,
        };
        let dir = scratch("ckptsweep");
        let vfs = FaultVfs::new();
        let mut d = run(&dir, &vfs);
        vfs.fail_nth(i, kind);
        let result = d.checkpoint();
        assert_eq!(vfs.injected(), 1, "op {i}: the armed fault must fire");
        vfs.set_enabled(false);

        // The fault may surface as an error or be absorbed (GC treats
        // an unreadable manifest as unrestorable and purges it); either
        // way the directory must recover the full durable prefix right
        // now, exactly as the fault left it.
        let crashed = scratch("ckptsweep-crash");
        copy_dir(&dir, &crashed);
        let report = recover_and_check(&crashed, &refs, None);
        assert_eq!(
            report.last_lsn, n,
            "op {i} ({kind:?}): fault inside checkpoint lost durable updates"
        );
        std::fs::remove_dir_all(&crashed).unwrap();

        // The engine repairs itself: a WAL-half fault degraded it
        // (heal), a file-half fault left it active (retry succeeds).
        if result.is_err() {
            if d.is_degraded() {
                let heal = d.try_heal().expect("heal with faults cleared");
                assert!(heal.healed, "op {i}: heal must succeed");
            } else {
                d.checkpoint()
                    .expect("op {i}: checkpoint retry with faults cleared");
            }
        }
        assert!(!d.is_degraded());
        drop(d);
        let report = recover_and_check(&dir, &refs, None);
        assert_eq!(
            report.last_lsn, n,
            "op {i} ({kind:?}): post-repair recovery"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

/// Watermark vs. restorability: a retained manifest whose view file is
/// gone must not anchor the WAL truncation cutoff. After GC runs over
/// such a directory, dropping the *newest* manifest must still leave a
/// recoverable pair — an older restorable checkpoint plus a log tail
/// that reaches back to it. (The old GC counted the unrestorable
/// manifest toward `retained`, evicted the older good checkpoint, and
/// truncated the WAL past the point recovery could actually reach.)
#[test]
fn drop_newest_manifest_after_gc() {
    let dir = scratch("gcdropnew");
    let refs = reference_snapshots_extended(None);
    let (q, engine) = fresh(None);
    let mut d = DurableEngine::create(&dir, engine, cfg()).unwrap();
    let mut gen = ScheduleGen::new(&q, &specs(), &sym_vars(&q));
    while let Some((rel, delta)) = gen.next_batch(&q.catalog) {
        d.apply(rel, &Delta::Flat(delta)).unwrap();
    }
    // Delete a view file only the newest retained manifest references,
    // making it unrestorable while its manifest still reads fine.
    let manifests = fivm::durability::checkpoint::list_manifests(&dir).unwrap();
    assert_eq!(manifests.len(), 2);
    let newest = fivm::durability::checkpoint::read_manifest(&manifests[1].path).unwrap();
    let older = fivm::durability::checkpoint::read_manifest(&manifests[0].path).unwrap();
    let &(node, file_seq) = newest
        .views
        .iter()
        .find(|v| !older.views.contains(v))
        .expect("newest checkpoint rewrote at least one view");
    std::fs::remove_file(fivm::durability::checkpoint::view_file_path(
        &dir, node, file_seq,
    ))
    .unwrap();
    // More updates trigger the next checkpoint + GC, which must skip
    // the unrestorable manifest when picking what to retain and where
    // to truncate the log.
    let mut gen2 = ScheduleGen::new(&q, &extra_specs(), &sym_vars(&q));
    while let Some((rel, delta)) = gen2.next_batch(&q.catalog) {
        d.apply(rel, &Delta::Flat(delta)).unwrap();
    }
    d.sync_all().unwrap();
    let total = d.last_lsn();
    drop(d);
    // Fixture check: the post-damage checkpoint must have rewritten the
    // damaged node (the extra schedule dirties every relation), so the
    // newest manifest does not share the deleted file.
    let manifests = fivm::durability::checkpoint::list_manifests(&dir).unwrap();
    let newest_after =
        fivm::durability::checkpoint::read_manifest(&manifests.last().unwrap().path).unwrap();
    assert!(
        !newest_after.views.contains(&(node, file_seq)),
        "fixture: node {node} must be rewritten by the post-damage checkpoint"
    );
    // Crash scenario: the newest manifest is lost *after* that GC ran.
    std::fs::remove_file(&manifests.last().unwrap().path).unwrap();
    let (_q2, engine2) = fresh(None);
    let (recovered, report) = DurableEngine::open(&dir, engine2, cfg())
        .expect("must recover from an older kept checkpoint plus the WAL tail");
    assert_eq!(report.last_lsn, total);
    assert_eq!(snapshot(recovered.engine()), refs[total as usize]);
    drop(recovered);
    std::fs::remove_dir_all(&dir).unwrap();
}
