//! Ordered readback with interned string keys.
//!
//! `Value::Sym` compares by intern id, which is allocation order — not
//! dictionary order. Internal machinery (view merges, canonical test
//! forms) may sort however it likes, but *user-facing* ordered
//! enumeration must resolve symbols through the catalog first:
//! `Tuple::cmp_resolved` / `Relation::sorted_resolved` /
//! `EngineSnapshot::sorted`. These tests pin the regression where ids
//! were interned out of dictionary order (late-arriving keys, recovery
//! replay order, reversed streams) and `sorted()` silently returned
//! id-ordered — not lexicographic — output.

use fivm::data::housing;
use fivm::prelude::*;

/// Constructed mismatch: intern "zzz" before "aaa" so id order and
/// dictionary order disagree, then check both sort paths.
#[test]
fn sorted_resolved_is_lexicographic_when_intern_order_is_not() {
    let q = QueryDef::example_rst(&["B"]);
    let zzz = q.catalog.sym("zzz");
    let aaa = q.catalog.sym("aaa");
    let schema = q.relations[0].schema.clone();
    let rel = Relation::from_pairs(
        schema,
        [
            (Tuple::new(vec![Value::Int(1), zzz.clone()]), 2i64),
            (Tuple::new(vec![Value::Int(1), aaa.clone()]), 3i64),
        ],
    );
    let by_id = rel.sorted();
    let by_str = rel.sorted_resolved(&q.catalog);
    // Id order: zzz (interned first) sorts first — the internal order.
    assert_eq!(by_id[0].0.get(1), &zzz);
    // Dictionary order: aaa first — the user-facing order.
    assert_eq!(by_str[0].0.get(1), &aaa);
    assert_ne!(
        by_id, by_str,
        "the fixture must actually exercise the mismatch"
    );
}

#[test]
fn tuple_cmp_resolved_resolves_symbols_and_falls_back_to_length() {
    let c = Catalog::new();
    let z = c.sym("zebra");
    let a = c.sym("apple");
    let t_z = Tuple::new(vec![z.clone()]);
    let t_a = Tuple::new(vec![a.clone()]);
    assert_eq!(t_a.cmp_resolved(&t_z, &c), std::cmp::Ordering::Less);
    assert_eq!(t_z.cmp_resolved(&t_a, &c), std::cmp::Ordering::Greater);
    let t_za = Tuple::new(vec![z.clone(), a]);
    assert_eq!(
        t_z.cmp_resolved(&t_za, &c),
        std::cmp::Ordering::Less,
        "equal prefix: the shorter tuple sorts first"
    );
}

/// The serving layer's ordered enumeration goes through the resolved
/// path: a snapshot of a view keyed by out-of-order-interned symbols
/// enumerates in dictionary order.
#[test]
fn snapshot_sorted_is_dictionary_ordered() {
    let q = QueryDef::example_rst(&["B"]);
    // Interned in reverse dictionary order.
    let keys: Vec<Value> = (0..6)
        .rev()
        .map(|i| q.catalog.sym(&format!("k{i}")))
        .collect();
    let vo = VariableOrder::parse("A - { B, C - { D, E } }", &q.catalog);
    let tree = ViewTree::build(&q, &vo);
    let mut engine: IvmEngine<i64> = IvmEngine::new(q.clone(), tree, &[0, 1, 2], LiftingMap::new());
    for (rel, t) in [(1usize, fivm::tuple![1, 3, 5]), (2, fivm::tuple![3, 4])] {
        let d = Relation::from_pairs(q.relations[rel].schema.clone(), [(t, 1i64)]);
        engine.apply(rel, &Delta::Flat(d));
    }
    for k in &keys {
        let t = Tuple::new(vec![Value::Int(1), k.clone()]);
        let d = Relation::from_pairs(q.relations[0].schema.clone(), [(t, 1i64)]);
        engine.apply(0, &Delta::Flat(d));
    }
    let mut s = ServingEngine::new(engine);
    let snap = s.publish();
    let root = s.engine().tree().root;
    let rows = snap.sorted(root, &q.catalog).expect("root is materialized");
    assert_eq!(rows.len(), 6);
    let rendered: Vec<String> = rows
        .iter()
        .map(|(t, _)| {
            q.catalog
                .resolve_sym(t.get(0).as_sym().expect("root key is a symbol"))
                .unwrap()
                .to_string()
        })
        .collect();
    let mut want = rendered.clone();
    want.sort();
    assert_eq!(
        rendered, want,
        "snapshot sorted() must be dictionary-ordered"
    );
    // And it must differ from naive id order, or the fixture is vacuous.
    let naive: Vec<Tuple> = snap
        .view(root)
        .unwrap()
        .to_relation()
        .sorted()
        .into_iter()
        .map(|(t, _)| t)
        .collect();
    assert_ne!(
        naive,
        rows.iter().map(|(t, _)| t.clone()).collect::<Vec<_>>(),
        "intern order must disagree with dictionary order in this fixture"
    );
}

/// Figure 11's string-keyed Housing variant: postcodes interned in
/// stream order (here reversed, as a late-loading site would see) must
/// still read back in dictionary order through the resolved path.
#[test]
fn housing_string_postcodes_read_back_in_dictionary_order() {
    let q = housing::query();
    // A reversed arrival order: PC000009 interns before PC000000.
    let n = 10usize;
    let keys: Vec<Value> = (0..n)
        .rev()
        .map(|pc| q.catalog.sym(&format!("PC{pc:06}")))
        .collect();
    let schema = q.relations[4].schema.clone(); // Demographics(postcode, ...)
    let arity = schema.len();
    let pairs: Vec<(Tuple, i64)> = keys
        .iter()
        .enumerate()
        .map(|(i, pc)| {
            let mut vals = vec![pc.clone()];
            vals.extend((0..arity - 1).map(|j| Value::Int((i * 10 + j) as i64)));
            (Tuple::new(vals), 1i64)
        })
        .collect();
    let rel = Relation::from_pairs(schema, pairs);
    let by_str = rel.sorted_resolved(&q.catalog);
    let rendered: Vec<&str> = by_str
        .iter()
        .map(|(t, _)| q.catalog.resolve_sym(t.get(0).as_sym().unwrap()).unwrap())
        .collect();
    assert!(
        rendered.windows(2).all(|w| w[0] <= w[1]),
        "postcodes must enumerate in dictionary order, got {rendered:?}"
    );
    assert_eq!(rendered[0], "PC000000");
    assert_ne!(
        rel.sorted(),
        by_str,
        "reversed intern order must make id order disagree"
    );
}
