//! Property test for the third factorization lock (§6.3): under random
//! update sequences, the factorized payload representation enumerates
//! to exactly the listing representation, with matching multiplicities,
//! on both tree-shaped and star-shaped conjunctive queries.

use fivm::engine::enumerate::{factorized_preprojection, factorized_transform};
use fivm::prelude::*;
use proptest::prelude::*;

fn cq_liftings(_q: &QueryDef, cq_free: &[VarId]) -> LiftingMap<RelPayload> {
    let mut lifts = LiftingMap::new();
    for &v in cq_free {
        lifts.set(
            v,
            Lifting::from_fn(move |val: &Value| RelPayload::lift_free(Schema::new(vec![v]), val)),
        );
    }
    lifts
}

/// Note: the factorized representation sums derivation counts per
/// value, so it is exact for *non-negative* databases (the paper’s
/// insert streams; deletions of existing tuples are fine). A transient
/// negative multiplicity can cancel a marginal sum while individual
/// listing tuples survive — so the generator below only deletes tuples
/// that exist.
fn check(
    q: &QueryDef,
    vo: &VariableOrder,
    cq_free: &[VarId],
    updates: &[(usize, Vec<i64>, i64)],
) -> Result<(), TestCaseError> {
    let tree = ViewTree::build(q, vo);
    let lifts = cq_liftings(q, cq_free);
    let all: Vec<usize> = (0..q.relations.len()).collect();
    let transform = factorized_transform(&tree);
    let mut fact: IvmEngine<RelPayload> =
        IvmEngine::new(q.clone(), tree.clone(), &all, lifts.clone())
            .with_payload_transform(transform)
            .with_payload_preprojection(factorized_preprojection());
    let mut list: IvmEngine<RelPayload> = IvmEngine::new(q.clone(), tree, &all, lifts);
    let mut sorted_free = cq_free.to_vec();
    sorted_free.sort_unstable();
    let out_schema = Schema::new(sorted_free);
    let mut counts: FxHashMap<(usize, Tuple), i64> = FxHashMap::default();

    for (rel, vals, mult) in updates {
        let t = Tuple::new(vals.iter().map(|&v| Value::Int(v)).collect());
        // keep the database non-negative: skip deletes of absent tuples
        let entry = counts.entry((*rel, t.clone())).or_insert(0);
        if *entry + mult < 0 {
            continue;
        }
        *entry += mult;
        let mut payload = RelPayload::one();
        if *mult < 0 {
            payload = payload.neg();
        }
        let d = Relation::from_pairs(q.relations[*rel].schema.clone(), [(t, payload)]);
        fact.apply(*rel, &Delta::Flat(d.clone()));
        list.apply(*rel, &Delta::Flat(d));

        let mut enumerated = FactorizedResult::new(&fact).enumerate(&out_schema);
        enumerated.sort();
        let mut expected = list
            .result()
            .payload(&Tuple::unit())
            .project_onto(&out_schema)
            .sorted();
        expected.sort();
        prop_assert_eq!(enumerated, expected);
    }
    Ok(())
}

fn upd(n_rels: usize, arities: Vec<usize>) -> impl Strategy<Value = (usize, Vec<i64>, i64)> {
    (0..n_rels).prop_flat_map(move |rel| {
        let arity = arities[rel];
        (
            Just(rel),
            proptest::collection::vec(0i64..3, arity),
            prop_oneof![3 => Just(1i64), 1 => Just(-1)],
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The paper’s Q(A,B,C,D) = R(A,B), S(A,C,E), T(C,D) (Example 6.5).
    #[test]
    fn rst_query(updates in proptest::collection::vec(upd(3, vec![2, 3, 2]), 1..15)) {
        let q = QueryDef::example_rst(&[]);
        let vo = VariableOrder::parse("A - { B, C - { D, E } }", &q.catalog);
        let free: Vec<VarId> = ["A", "B", "C", "D"]
            .iter()
            .map(|n| q.catalog.lookup(n).unwrap())
            .collect();
        check(&q, &vo, &free, &updates)?;
    }

    /// A star query where factorization pays off the most.
    #[test]
    fn star_query(updates in proptest::collection::vec(upd(3, vec![2, 2, 2]), 1..15)) {
        let q = QueryDef::new(
            &[("R", &["P", "X"]), ("S", &["P", "Y"]), ("T", &["P", "Z"])],
            &[],
        );
        let vo = VariableOrder::parse("P - { X, Y, Z }", &q.catalog);
        let free: Vec<VarId> = ["P", "X", "Y", "Z"]
            .iter()
            .map(|n| q.catalog.lookup(n).unwrap())
            .collect();
        check(&q, &vo, &free, &updates)?;
    }

    /// Projection: only a subset of variables is CQ-free; bound
    /// variables contribute multiplicities.
    #[test]
    fn projected_query(updates in proptest::collection::vec(upd(2, vec![2, 2]), 1..15)) {
        let q = QueryDef::new(&[("R", &["A", "B"]), ("S", &["B", "C"])], &[]);
        // only A and C are CQ-free; B is projected away (its values are
        // counted into multiplicities). Per §6.6 the free variables must
        // sit on top of the bound ones for the factorization to be valid.
        let vo = VariableOrder::parse("A - C - B", &q.catalog);
        let free: Vec<VarId> = ["A", "C"].iter().map(|n| q.catalog.lookup(n).unwrap()).collect();
        check(&q, &vo, &free, &updates)?;
    }
}
