//! Thread-count determinism for parallel delta propagation: the same
//! update schedule applied at 1, 2, 4 and 8 workers must leave every
//! materialized view **byte-identical** — same keys, same payloads —
//! to the sequential engine's, after every batch, under the
//! differential oracle (`tests/support/oracle.rs`).
//!
//! Why this holds by design: the route phase partitions a step's input
//! into per-worker chunks in index order and routes output pairs by
//! key-hash range; the merge phase folds each range's pairs in worker
//! (= chunk) order. A key's payload contributions therefore fold in
//! the same order at any worker count, and for exact rings (`i64`
//! here) the folded sums are equal no matter how the surrounding work
//! was interleaved. These tests pin that contract so a refactor that
//! loses it (e.g. racing merges, nondeterministic routing) fails
//! loudly rather than flaking downstream.

#[path = "support/oracle.rs"]
mod support;

use fivm::prelude::*;
use proptest::prelude::*;
use std::collections::HashMap;
use support::{batch_specs, build_batch, canon_engine_result, oracle_eval, OracleDb};

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// One engine per worker count (plus index 0 = untouched sequential
/// default), with the fan-out forced onto small steps.
fn engine_fleet(q: &QueryDef, tree: &ViewTree, lifts: &LiftingMap<i64>) -> Vec<IvmEngine<i64>> {
    let all: Vec<usize> = (0..q.relations.len()).collect();
    let mut engines = vec![IvmEngine::new(q.clone(), tree.clone(), &all, lifts.clone())];
    for &w in &WORKER_COUNTS {
        let mut e = IvmEngine::new(q.clone(), tree.clone(), &all, lifts.clone());
        e.set_workers(w);
        e.set_parallel_threshold(16);
        engines.push(e);
    }
    engines
}

/// Every materialized view of every engine, canonicalized to sorted
/// `(key, payload)` rows, must equal the sequential reference's.
fn assert_views_identical(engines: &[IvmEngine<i64>], context: &str) -> Result<(), TestCaseError> {
    let reference = &engines[0];
    for node in 0..reference.tree().nodes.len() {
        let want = reference.view_relation(node).map(|r| r.sorted());
        for e in &engines[1..] {
            let got = e.view_relation(node).map(|r| r.sorted());
            prop_assert_eq!(
                &got,
                &want,
                "{}: node {} differs between sequential and {}-worker engines",
                context,
                node,
                e.workers()
            );
        }
    }
    Ok(())
}

/// Drive one schedule through the whole fleet, checking full-state
/// agreement and the oracle after every batch.
fn run_deterministic_schedule(
    q: &QueryDef,
    engines: &mut [IvmEngine<i64>],
    specs: &[support::BatchSpec],
    identity_lift_vars: &[VarId],
) -> Result<(), TestCaseError> {
    let mut db: OracleDb = q.relations.iter().map(|_| HashMap::new()).collect();
    let mut live: Vec<Vec<Vec<i64>>> = q.relations.iter().map(|_| Vec::new()).collect();
    for (i, spec) in specs.iter().enumerate() {
        let rel = spec.rel % q.relations.len();
        let arity = q.relations[rel].schema.len();
        let pairs = build_batch(spec, arity, &mut db[rel], &mut live[rel]);
        let delta = Relation::from_pairs(q.relations[rel].schema.clone(), pairs);
        for e in engines.iter_mut() {
            e.apply(rel, &Delta::Flat(delta.clone()));
        }
        assert_views_identical(engines, &format!("batch {i} (rel {rel})"))?;
        let expected = oracle_eval(q, &db, identity_lift_vars);
        prop_assert_eq!(
            &canon_engine_result(q, &engines[0].result()),
            &expected,
            "sequential engine diverged from the oracle after batch {}",
            i
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Star group-by SUM under randomized schedules: identical views
    /// at every worker count, after every batch.
    #[test]
    fn star_views_identical_across_worker_counts(specs in batch_specs(11, 5)) {
        let q = QueryDef::example_rst(&["A", "C"]);
        let vo = VariableOrder::parse("A - { B, C - { D, E } }", &q.catalog);
        let tree = ViewTree::build(&q, &vo);
        let b = q.catalog.lookup("B").unwrap();
        let e = q.catalog.lookup("E").unwrap();
        let mut lifts = LiftingMap::<i64>::new();
        lifts.set(b, fivm::core::lifting::int_identity());
        lifts.set(e, fivm::core::lifting::int_identity());
        let mut engines = engine_fleet(&q, &tree, &lifts);
        run_deterministic_schedule(&q, &mut engines, &specs, &[b, e])?;
    }

    /// Triangle with indicator projections: indicator deltas ride the
    /// same fan-out; views (including indicator views) must agree at
    /// every worker count.
    #[test]
    fn triangle_views_identical_across_worker_counts(specs in batch_specs(10, 5)) {
        let q = QueryDef::triangle();
        let vo = VariableOrder::parse("A - B - C", &q.catalog);
        let mut tree = ViewTree::build(&q, &vo);
        add_indicators(&mut tree, &q);
        let mut engines = engine_fleet(&q, &tree, &LiftingMap::new());
        run_deterministic_schedule(&q, &mut engines, &specs, &[])?;
    }
}

/// Deterministic large-batch case crossing the *default* threshold
/// (4096), so the production configuration's fan-out — not just the
/// test-forced one — is exercised: a 10k-tuple skewed batch, then its
/// exact negation, at every worker count.
#[test]
fn default_threshold_large_batches_are_deterministic() {
    let q = QueryDef::example_rst(&["A"]);
    let vo = VariableOrder::parse("A - { B, C - { D, E } }", &q.catalog);
    let tree = ViewTree::build(&q, &vo);
    let all: Vec<usize> = (0..q.relations.len()).collect();
    let mut engines: Vec<IvmEngine<i64>> = std::iter::once(1usize)
        .chain(WORKER_COUNTS)
        .map(|w| {
            let mut e = IvmEngine::new(q.clone(), tree.clone(), &all, LiftingMap::new());
            e.set_workers(w); // default parallel threshold stays in force
            e
        })
        .collect();

    let batch = |rel: usize, sign: i64| {
        let arity = q.relations[rel].schema.len();
        Relation::from_pairs(
            q.relations[rel].schema.clone(),
            (0..10_000).map(move |i| {
                let vals: Vec<Value> = (0..arity)
                    .map(|c| {
                        // Skew: a quarter of rows share join key 1.
                        let v = if i % 4 == 0 && c == 0 {
                            1
                        } else {
                            (i * 7 + c as i64) % 997
                        };
                        Value::Int(v)
                    })
                    .collect();
                (Tuple::new(vals), sign)
            }),
        )
    };
    for rel in 0..3 {
        let d = batch(rel, 1);
        for e in engines.iter_mut() {
            e.apply(rel, &Delta::Flat(d.clone()));
        }
    }
    for node in 0..engines[0].tree().nodes.len() {
        let want = engines[0].view_relation(node).map(|r| r.sorted());
        for e in &engines[1..] {
            assert_eq!(
                e.view_relation(node).map(|r| r.sorted()),
                want,
                "node {node} differs at {} workers after load",
                e.workers()
            );
        }
    }
    // Exact negation drains every view to empty at every worker count.
    for rel in 0..3 {
        let d = batch(rel, -1);
        for e in engines.iter_mut() {
            e.apply(rel, &Delta::Flat(d.clone()));
        }
    }
    for e in &engines {
        assert!(e.result().is_empty(), "{} workers", e.workers());
        assert_eq!(e.total_entries(), 0, "{} workers", e.workers());
    }
}

/// Worker count can change mid-stream (the pool is rebuilt lazily);
/// the maintained state stays exactly the sequential state.
#[test]
fn changing_worker_count_mid_stream_is_safe() {
    let q = QueryDef::example_rst(&[]);
    let vo = VariableOrder::parse("A - { B, C - { D, E } }", &q.catalog);
    let tree = ViewTree::build(&q, &vo);
    let all: Vec<usize> = (0..3).collect();
    let mut seq = IvmEngine::new(q.clone(), tree.clone(), &all, LiftingMap::new());
    let mut par = IvmEngine::new(q.clone(), tree.clone(), &all, LiftingMap::new());
    par.set_parallel_threshold(8);
    for (round, &w) in [1usize, 4, 2, 8, 1, 3].iter().enumerate() {
        par.set_workers(w);
        for rel in 0..3 {
            let arity = q.relations[rel].schema.len();
            let d = Relation::from_pairs(
                q.relations[rel].schema.clone(),
                (0..200i64).map(|i| {
                    let vals: Vec<Value> = (0..arity)
                        .map(|c| Value::Int((i + round as i64 * 31 + c as i64) % 23))
                        .collect();
                    (Tuple::new(vals), if i % 5 == 4 { -1 } else { 1 })
                }),
            );
            seq.apply(rel, &Delta::Flat(d.clone()));
            par.apply(rel, &Delta::Flat(d));
        }
        assert_eq!(
            seq.result().sorted(),
            par.result().sorted(),
            "diverged after switching to {w} workers"
        );
    }
}
