//! Cross-encoding consistency of the regression aggregates (paper §6.2,
//! §7): the shared cofactor ring (F-IVM / DBT-RING), the SQL-OPT
//! degree-indexed encoding, and the per-aggregate scalar encoding
//! (DBT / 1-IVM) must all compute the same statistics — and all must
//! match the explicit design matrix — under random update streams.

use fivm::prelude::*;
use proptest::prelude::*;

fn upd() -> impl Strategy<Value = (usize, Vec<i64>, bool)> {
    (0usize..2).prop_flat_map(|rel| {
        let arity = 2; // R(A,B) and S(A,C) both have arity 2
        (
            Just(rel),
            proptest::collection::vec(-3i64..4, arity),
            prop_oneof![4 => Just(true), 1 => Just(false)],
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn all_encodings_agree(updates in proptest::collection::vec(upd(), 1..20)) {
        let q = QueryDef::new(&[("R", &["A", "B"]), ("S", &["A", "C"])], &[]);
        let vo = VariableOrder::auto(&q);
        let tree = ViewTree::build(&q, &vo);
        let spec = CofactorSpec::over_all_vars(&q);
        let m = spec.m();
        let all = [0usize, 1];

        let mut ring_engine: IvmEngine<Cofactor> =
            IvmEngine::new(q.clone(), tree.clone(), &all, spec.liftings());
        let mut degree_engine: IvmEngine<DegreeRing> =
            IvmEngine::new(q.clone(), tree.clone(), &all, spec.degree_liftings());
        let scalar_aggs = spec.scalar_aggregates();
        let mut scalar_engines: Vec<(String, IvmEngine<f64>)> = scalar_aggs
            .into_iter()
            .map(|(name, lifts)| {
                (name, IvmEngine::new(q.clone(), tree.clone(), &all, lifts))
            })
            .collect();
        let mut dbt_ring: RecursiveIvm<Cofactor> =
            RecursiveIvm::new(q.clone(), &all, spec.liftings());
        let mut db: Database<i64> = Database::empty(&q); // mirror for the oracle

        for (rel, vals, insert) in &updates {
            let t = Tuple::new(vals.iter().map(|&v| Value::Int(v)).collect());
            let mult = if *insert { 1i64 } else { -1 };
            // skip deletes that would go negative (keep a set-like db)
            if mult < 0 && !db.relations[*rel].contains(&t) {
                continue;
            }
            db.relations[*rel].insert(t.clone(), mult);
            let schema = q.relations[*rel].schema.clone();
            let c_one = if *insert { Cofactor::one() } else { Cofactor::one().neg() };
            ring_engine.apply(*rel, &Delta::Flat(Relation::from_pairs(schema.clone(), [(t.clone(), c_one.clone())])));
            let d_one = if *insert { DegreeRing::one() } else { DegreeRing::one().neg() };
            degree_engine.apply(*rel, &Delta::Flat(Relation::from_pairs(schema.clone(), [(t.clone(), d_one)])));
            for (_, e) in scalar_engines.iter_mut() {
                e.apply(*rel, &Delta::Flat(Relation::from_pairs(schema.clone(), [(t.clone(), mult as f64)])));
            }
            dbt_ring.apply(*rel, &Delta::Flat(Relation::from_pairs(schema, [(t.clone(), c_one)])));
        }

        // oracle: explicit design matrix from the joined rows
        let joined = db.relations[0].join(&db.relations[1]);
        let mut ec = 0i64;
        let mut es = vec![0.0; m];
        let mut eq = vec![0.0; m * m];
        for (t, &mult) in joined.iter() {
            let row: Vec<f64> = (0..m).map(|i| t.get(i).as_f64().unwrap()).collect();
            ec += mult;
            for i in 0..m {
                es[i] += mult as f64 * row[i];
                for j in 0..m {
                    eq[i * m + j] += mult as f64 * row[i] * row[j];
                }
            }
        }

        let close = |a: f64, b: f64| (a - b).abs() < 1e-9 * (1.0 + a.abs().max(b.abs()));
        let (c1, s1, q1) = spec.extract(&ring_engine.result());
        prop_assert_eq!(c1, ec, "cofactor count");
        prop_assert!(s1.iter().zip(&es).all(|(a, b)| close(*a, *b)));
        prop_assert!(q1.iter().zip(&eq).all(|(a, b)| close(*a, *b)));

        let (c2, s2, q2) = spec.extract_degree(&degree_engine.result());
        prop_assert_eq!(c2, ec, "SQL-OPT count");
        prop_assert!(s2.iter().zip(&es).all(|(a, b)| close(*a, *b)));
        prop_assert!(q2.iter().zip(&eq).all(|(a, b)| close(*a, *b)));

        let (c3, s3, q3) = spec.extract(&dbt_ring.result());
        prop_assert_eq!(c3, ec, "DBT-RING count");
        prop_assert!(s3.iter().zip(&es).all(|(a, b)| close(*a, *b)));
        prop_assert!(q3.iter().zip(&eq).all(|(a, b)| close(*a, *b)));

        for (name, e) in &scalar_engines {
            let val = e.result().payload(&Tuple::unit());
            let expected = if name == "count" {
                ec as f64
            } else if let Some(rest) = name.strip_prefix("sum[") {
                es[rest.trim_end_matches(']').parse::<usize>().unwrap()]
            } else {
                let inner = name.strip_prefix("prod[").unwrap().trim_end_matches(']');
                let (i, j) = inner.split_once(',').unwrap();
                eq[i.parse::<usize>().unwrap() * m + j.parse::<usize>().unwrap()]
            };
            prop_assert!(close(val, expected), "{}: {} vs {}", name, val, expected);
        }
    }
}
