#!/usr/bin/env bash
# Source-level lint gates that rustc/clippy cannot express:
#
#   1. `Ordering::Relaxed` is denied in library code unless the site is
#      annotated with a `relaxed-ok:` comment (same line or within the
#      three preceding lines) explaining why no ordering is needed.
#      Every un-annotated Relaxed is a potential publication bug of the
#      kind the model checker exists to catch — the annotation forces
#      the argument to be written down next to the code.
#      `fivm-check` itself is exempt: it implements the memory model,
#      so weak orderings are its subject matter.
#
#   2. `.unwrap()` / `.expect(` are denied in fivm-durability library
#      code (tests exempt). The durability layer parses untrusted bytes
#      off disk; a panic during recovery turns recoverable corruption
#      into an unrecoverable crash. Errors must flow through
#      `DurabilityError`.
#
# Exits non-zero and prints every violation when the gate fails.
set -u
cd "$(dirname "$0")/.."

fail=0

# --- gate 1: un-annotated Ordering::Relaxed --------------------------
while IFS=: read -r file line _; do
  [ -n "$file" ] || continue
  start=$((line - 3))
  [ "$start" -lt 1 ] && start=1
  if ! sed -n "${start},${line}p" "$file" | grep -q 'relaxed-ok:'; then
    echo "source_lint: $file:$line: Ordering::Relaxed without a 'relaxed-ok:' justification" >&2
    fail=1
  fi
done < <(grep -rn 'Ordering::Relaxed' crates/*/src --include='*.rs' \
  | grep -v '^crates/fivm-check/')

# --- gate 2: unwrap/expect in durability lib code --------------------
# Strip `#[cfg(test)] mod tests` blocks by cutting each file at the
# first `mod tests` marker; unit tests in this crate all live in a
# trailing tests module.
# Comment text (e.g. docs discussing unwrap) is stripped first.
for f in crates/fivm-durability/src/*.rs; do
  hits=$(awk '/mod tests/{exit} {print}' "$f" | sed 's|//.*||' \
    | grep -n '\.unwrap()\|\.expect(' || true)
  if [ -n "$hits" ]; then
    printf '%s\n' "$hits" | while IFS=: read -r line _; do
      echo "source_lint: $f:$line: unwrap/expect in durability library code (use DurabilityError)" >&2
    done
    fail=1
  fi
done

if [ "$fail" -ne 0 ]; then
  echo "source_lint: FAILED" >&2
  exit 1
fi
echo "source_lint: OK"
