#!/usr/bin/env python3
"""Perf-regression gate for the CI smoke report.

Usage:
    python3 scripts/bench_gate.py BENCH_smoke.json BENCH_BASELINE.json
    python3 scripts/bench_gate.py BENCH_smoke.json BENCH_BASELINE.json --reseed

Compares the one-line JSON report emitted by
`cargo run --release -p fivm-bench --bin experiments -- --smoke`
against the committed baseline `BENCH_BASELINE.json` and exits
non-zero if any gated metric regresses outside its tolerance band
(or is missing from the report). A delta table is printed either way.

Baseline format — a curated subset of the smoke metrics, each with its
own band:

    {
      "source": "BENCH_PR10.json",
      "metrics": {
        "fig13_triangle": {"baseline": 193352, "dir": "higher",
                           "tol_pct": 50},
        ...
      }
    }

`dir` says which direction is good: "higher" (throughputs, speedup
ratios — the gate fails when value < baseline * (1 - tol_pct/100)) or
"lower" (overheads, latencies — fails when
value > baseline * (1 + tol_pct/100)). A metric may carry `tol_abs`
instead of `tol_pct`, giving an *additive* band
(value must stay >= baseline - tol_abs, resp. <= baseline + tol_abs) —
use it for percentage-point metrics like logging overhead, whose
baseline can sit near or below zero where a multiplicative band is
meaningless. Absolute throughputs carry wide bands (CI runners vary a
lot machine-to-machine); dimensionless ratios (speedups, scaling
factors) are machine-independent and carry tighter ones.

Update protocol
---------------
The baseline is committed on purpose: it only moves when a human moves
it.

1. A PR that *intentionally* changes performance (new fast path, new
   metric, accepted regression) regenerates the report on a quiet
   machine:
       cargo run --release -p fivm-bench --bin experiments -- --smoke \
           | tee BENCH_PRn.json
2. Re-seed the baseline values from that report (bands and directions
   are preserved; metrics present in the baseline but missing from the
   report are left untouched and listed):
       python3 scripts/bench_gate.py BENCH_PRn.json BENCH_BASELINE.json --reseed
3. Commit BENCH_BASELINE.json together with the BENCH_PRn.json it was
   seeded from (update "source"), and say in the PR message *why* the
   numbers moved.

Adding a gated metric = adding one entry to "metrics" with a band
chosen by direction and machine-dependence. Removing one = deleting
the entry. Never hand-edit "baseline" values; re-seed from a real run.
"""

import json
import sys


def load(path):
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench_gate: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)


def reseed(report, baseline, baseline_path):
    untouched = []
    for name, spec in baseline["metrics"].items():
        if name in report:
            spec["baseline"] = report[name]
        else:
            untouched.append(name)
    with open(baseline_path, "w", encoding="utf-8") as f:
        json.dump(baseline, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"re-seeded {len(baseline['metrics']) - len(untouched)} metric(s) "
          f"into {baseline_path}")
    for name in untouched:
        print(f"  kept (absent from report): {name}")
    print('remember to update "source" and commit the report it came from')


def gate(report, baseline):
    rows = []
    failures = []
    for name, spec in sorted(baseline["metrics"].items()):
        base, direction = spec["baseline"], spec["dir"]
        if "tol_abs" in spec:
            slack, band = spec["tol_abs"], f"±{spec['tol_abs']}"
        else:
            slack, band = abs(base) * spec["tol_pct"] / 100.0, f"±{spec['tol_pct']}%"
        if name not in report:
            failures.append(f"{name}: missing from report")
            rows.append((name, base, None, None, direction, band, "MISSING"))
            continue
        value = report[name]
        delta_pct = (value - base) / abs(base) * 100.0 if base else 0.0
        if direction == "higher":
            ok = value >= base - slack
        elif direction == "lower":
            ok = value <= base + slack
        else:
            failures.append(f"{name}: bad dir {direction!r}")
            continue
        status = "ok" if ok else "FAIL"
        if not ok:
            failures.append(
                f"{name}: {value} vs baseline {base} "
                f"({delta_pct:+.1f}%, {direction} is better, band {band})")
        rows.append((name, base, value, delta_pct, direction, band, status))

    name_w = max(len(r[0]) for r in rows)
    print(f"{'metric':<{name_w}} {'baseline':>12} {'current':>12} "
          f"{'delta':>8} {'dir':>6} {'band':>6}  status")
    for name, base, value, delta, direction, band, status in rows:
        cur = f"{value}" if value is not None else "-"
        dp = f"{delta:+.1f}%" if delta is not None else "-"
        print(f"{name:<{name_w}} {base:>12} {cur:>12} {dp:>8} "
              f"{direction:>6} {band:>6}  {status}")
    return failures


def main():
    args = [a for a in sys.argv[1:] if a != "--reseed"]
    if len(args) != 2:
        print(__doc__.split("\n\n", 1)[0], file=sys.stderr)
        print("usage: bench_gate.py REPORT.json BASELINE.json [--reseed]",
              file=sys.stderr)
        sys.exit(2)
    report_path, baseline_path = args
    report = load(report_path)
    baseline = load(baseline_path)
    if "metrics" not in baseline:
        print(f"bench_gate: {baseline_path} has no 'metrics' object",
              file=sys.stderr)
        sys.exit(2)

    if "--reseed" in sys.argv[1:]:
        reseed(report, baseline, baseline_path)
        return

    failures = gate(report, baseline)
    if failures:
        print(f"\nbench_gate: {len(failures)} regression(s) "
              f"vs {baseline.get('source', baseline_path)}:")
        for f_ in failures:
            print(f"  {f_}")
        sys.exit(1)
    print(f"\nbench_gate: all {len(baseline['metrics'])} gated metrics "
          f"within band (baseline: {baseline.get('source', baseline_path)})")


if __name__ == "__main__":
    main()
