#!/usr/bin/env bash
# Audit gate: every `unsafe` in library code must carry a safety
# argument. A `SAFETY:` comment (call sites) or a `# Safety` doc
# section (declarations) must appear on the same line or within the
# eight preceding lines of each line containing the `unsafe` keyword.
#
# Five of the seven crates `#![forbid(unsafe_code)]` outright; this
# script polices the remainder (fivm-core, fivm-engine,
# fivm-durability, fivm-check) where unsafe is load-bearing
# (lifetime-erased scatter jobs, SSE4.2 CRC, Send/Sync impls).
#
# Exits non-zero and prints every violation when the gate fails.
set -u
cd "$(dirname "$0")/.."

fail=0
while IFS=: read -r file line text; do
  [ -n "$file" ] || continue
  # Skip lint-attribute tokens (`forbid(unsafe_code)`,
  # `unsafe_op_in_unsafe_fn`) and mentions inside `//` comments.
  stripped=$(printf '%s' "$text" | sed 's|//.*||; s|unsafe_code||g; s|unsafe_op_in_unsafe_fn||g')
  printf '%s' "$stripped" | grep -q 'unsafe' || continue
  start=$((line - 8))
  [ "$start" -lt 1 ] && start=1
  if ! sed -n "${start},${line}p" "$file" | grep -q 'SAFETY\|# Safety'; then
    echo "unsafe_audit: $file:$line: unsafe without a SAFETY comment or '# Safety' doc section" >&2
    fail=1
  fi
done < <(grep -rn 'unsafe' crates/*/src --include='*.rs')

if [ "$fail" -ne 0 ]; then
  echo "unsafe_audit: FAILED" >&2
  exit 1
fi
echo "unsafe_audit: OK"
