//! Factorized representation of conjunctive query results (paper §6.3,
//! Figure 8): maintain the natural join of the Housing relations with
//! relational-ring payloads, comparing the **listing** representation
//! (full result tuples in the root payload) against the **factorized**
//! one (payloads projected per view) — same information, far less
//! memory, and lossless enumeration.
//!
//! Run with: `cargo run --release --example factorized_join`

use fivm::data::housing::{self, HousingConfig};
use fivm::engine::enumerate::{factorized_preprojection, factorized_transform};
use fivm::engine::memory::format_bytes;
use fivm::prelude::*;
use std::time::Instant;

fn main() {
    let cfg = HousingConfig {
        postcodes: 60,
        scale: 4, // 4 houses × 4 shops × 4 restaurants per postcode = 64× blowup
        ..Default::default()
    };
    let h = housing::generate(&cfg);
    let q = h.query.clone();
    println!(
        "Housing natural join at scale {}: {} input tuples, listing join ≈ {} tuples",
        cfg.scale,
        h.total_tuples(),
        cfg.postcodes * cfg.scale * cfg.scale * cfg.scale
    );

    // Conjunctive query: every variable is CQ-free (SELECT *), encoded
    // with singleton liftings per §6.3.
    let mut lifts: LiftingMap<RelPayload> = LiftingMap::new();
    let all_vars = q.all_vars();
    for &v in all_vars.iter() {
        lifts.set(
            v,
            Lifting::from_fn(move |val: &Value| RelPayload::lift_free(Schema::new(vec![v]), val)),
        );
    }

    let updatable: Vec<usize> = (0..q.relations.len()).collect();

    // Listing payloads.
    let tree = ViewTree::build(&q, &h.order);
    let mut listing: IvmEngine<RelPayload> =
        IvmEngine::new(q.clone(), tree.clone(), &updatable, lifts.clone());
    let t0 = Instant::now();
    run_stream(&mut listing, &h, &q);
    let t_list = t0.elapsed();

    // Factorized payloads: same engine + the §6.3 projection transform.
    let transform = factorized_transform(&tree);
    let mut fact: IvmEngine<RelPayload> = IvmEngine::new(q.clone(), tree, &updatable, lifts)
        .with_payload_transform(transform)
        .with_payload_preprojection(factorized_preprojection());
    let t1 = Instant::now();
    run_stream(&mut fact, &h, &q);
    let t_fact = t1.elapsed();

    let listing_bytes = listing.approx_bytes();
    let fact_bytes = fact.approx_bytes();
    println!("\n                     time        memory");
    println!(
        "  listing payloads   {t_list:>9.2?}  {}",
        format_bytes(listing_bytes)
    );
    println!(
        "  factorized         {t_fact:>9.2?}  {}",
        format_bytes(fact_bytes)
    );
    println!(
        "  factorization wins: {:.1}x less memory, {:.1}x faster",
        listing_bytes as f64 / fact_bytes as f64,
        t_list.as_secs_f64() / t_fact.as_secs_f64()
    );

    // The factorized form is lossless: enumerate a sample and compare
    // multiplicity totals.
    let result = FactorizedResult::new(&fact);
    let total = result.total_multiplicity();
    let listing_total: i64 = listing.result().payload(&Tuple::unit()).data.values().sum();
    assert_eq!(total, listing_total);
    println!("\njoin cardinality from both representations: {total}");

    // Enumerate the (postcode, price, averagesalary) projection.
    let pc = q.catalog.lookup("postcode").unwrap();
    let price = q.catalog.lookup("price").unwrap();
    let sal = q.catalog.lookup("averagesalary").unwrap();
    let mut vars = vec![pc, price, sal];
    vars.sort_unstable();
    let out_schema = Schema::new(vars);
    let t2 = Instant::now();
    let tuples = result.enumerate(&out_schema);
    println!(
        "enumerated {} assignments over {} in {:?}",
        tuples.len(),
        q.catalog.render(&out_schema),
        t2.elapsed()
    );
    println!("✓ factorized and listing representations agree");
}

fn run_stream(engine: &mut IvmEngine<RelPayload>, h: &housing::Housing, q: &QueryDef) {
    for batch in h.stream(1000) {
        let schema = q.relations[batch.relation].schema.clone();
        let delta = Relation::from_pairs(
            schema,
            batch.tuples.into_iter().map(|t| (t, RelPayload::one())),
        );
        engine.apply(batch.relation, &Delta::Flat(delta));
    }
}
