//! Learning a linear regression model over the Housing join (paper
//! §6.2): F-IVM maintains the cofactor matrix incrementally; each model
//! (re)train is an O(m²)-per-iteration gradient descent that never
//! touches the data again.
//!
//! Run with: `cargo run --release --example learn_regression`

use fivm::data::housing::{self, HousingConfig};
use fivm::prelude::*;
use std::time::Instant;

fn main() {
    let cfg = HousingConfig {
        postcodes: 500,
        scale: 2,
        ..Default::default()
    };
    let h = housing::generate(&cfg);
    let q = h.query.clone();
    let tree = ViewTree::build(&q, &h.order);
    let spec = CofactorSpec::over_all_vars(&q);
    println!(
        "Housing: {} relations, m = {} variables, {} regression aggregates shared in one ring",
        q.relations.len(),
        spec.m(),
        spec.aggregate_count()
    );

    let updatable: Vec<usize> = (0..q.relations.len()).collect();
    let mut engine: IvmEngine<Cofactor> =
        IvmEngine::new(q.clone(), tree, &updatable, spec.liftings());

    // Stream the dataset in batches of 1000 (the §7 workload).
    let t0 = Instant::now();
    let mut tuples = 0usize;
    for batch in h.stream(1000) {
        let schema = q.relations[batch.relation].schema.clone();
        tuples += batch.tuples.len();
        let delta = Relation::from_pairs(
            schema,
            batch.tuples.into_iter().map(|t| (t, Cofactor::one())),
        );
        engine.apply(batch.relation, &Delta::Flat(delta));
    }
    let maintain = t0.elapsed();
    println!(
        "maintained cofactor matrix over {tuples} tuples in {maintain:?} \
         ({:.0} tuples/s)",
        tuples as f64 / maintain.as_secs_f64()
    );

    // Train: predict `price` from a few house features.
    let (c, s, qm) = spec.extract(&engine.result());
    println!("join size (count aggregate): {c}");
    let var = |name: &str| spec.index_of(q.catalog.lookup(name).unwrap()).unwrap() as usize;
    let label = var("price");
    let features = vec![
        var("livingarea"),
        var("nbbedrooms"),
        var("nbbathrooms"),
        var("averagesalary"),
        var("distancecitycentre"),
    ];
    let t1 = Instant::now();
    let model = train(c, &s, &qm, label, &features, &TrainConfig::default());
    println!(
        "trained in {:?} / {} iterations (data-independent!): bias {:.3}, weights {:?}",
        t1.elapsed(),
        model.iterations,
        model.bias,
        model
            .weights
            .iter()
            .map(|w| (w * 1000.0).round() / 1000.0)
            .collect::<Vec<_>>()
    );
    println!("training MSE: {:.3}", model.mse);

    // Now stream more data and refresh the model — no rescan of the
    // database, just delta maintenance plus O(m²) retraining.
    let more = housing::generate(&HousingConfig {
        postcodes: 500,
        scale: 1,
        seed: 999,
    });
    let t2 = Instant::now();
    for batch in more.stream(1000) {
        let schema = q.relations[batch.relation].schema.clone();
        let delta = Relation::from_pairs(
            schema,
            batch.tuples.into_iter().map(|t| (t, Cofactor::one())),
        );
        engine.apply(batch.relation, &Delta::Flat(delta));
    }
    let (c2, s2, q2) = spec.extract(&engine.result());
    let refreshed = train(c2, &s2, &q2, label, &features, &TrainConfig::default());
    println!(
        "\nafter {} more tuples: refreshed model in {:?} (join size {c2}), bias {:.3}",
        more.total_tuples(),
        t2.elapsed(),
        refreshed.bias
    );
    assert!(c2 > c, "the join grew");
    println!("✓ model refreshed from maintained statistics only");
}
