//! Diagnostic: per-batch-size throughput of the flat-batch fast path
//! vs the general path on the fig12 workloads, with per-batch timing,
//! so regressions can be localized without a system profiler.
//!
//! ```text
//! cargo run --release --example profile_batch [housing|retailer] [BS]
//! ```

use fivm::data::{housing, retailer, HousingConfig, RetailerConfig};
use fivm::prelude::*;
use std::time::Instant;

fn ones_delta(schema: Schema, tuples: &[Tuple]) -> Delta<f64> {
    Delta::Flat(Relation::from_pairs(
        schema,
        tuples.iter().map(|t| (t.clone(), 1.0f64)),
    ))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let which = args.first().map(String::as_str).unwrap_or("retailer");
    let bs: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(100_000);

    let (q, order, batches) = match which {
        "housing" => {
            let h = housing::generate(&HousingConfig {
                postcodes: 25_000,
                scale: 4,
                ..Default::default()
            });
            (h.query.clone(), h.order.clone(), h.stream(bs))
        }
        _ => {
            let r = retailer::generate(&RetailerConfig {
                inventory_rows: 120_000,
                locations: 50,
                dates: 200,
                items: 1_000,
                zips: 40,
                ..Default::default()
            });
            (r.query.clone(), r.order.clone(), r.stream(bs))
        }
    };
    let tree = ViewTree::build(&q, &order);
    let all: Vec<usize> = (0..q.relations.len()).collect();
    let lifts = LiftingMap::<f64>::new();

    if args.iter().any(|a| a == "cof") {
        // The actual fig12 regime: cofactor-matrix maintenance.
        let spec = CofactorSpec::over_all_vars(&q);
        println!("== {which} (cofactor m={}), batch size {bs} ==", spec.m());
        for fast in [true, false] {
            let mut engine: IvmEngine<Cofactor> =
                IvmEngine::new(q.clone(), tree.clone(), &all, spec.liftings());
            engine.set_fast_path(fast);
            let label = if fast { "fast" } else { "general" };
            let start = Instant::now();
            let mut applied = 0usize;
            for b in &batches {
                let d = Delta::Flat(Relation::from_pairs(
                    q.relations[b.relation].schema.clone(),
                    b.tuples.iter().map(|t| (t.clone(), Cofactor::one())),
                ));
                engine.apply(b.relation, &d);
                applied += b.tuples.len();
                if start.elapsed().as_secs() > 30 {
                    break;
                }
            }
            println!(
                "  [{label}] TOTAL {applied} tuples in {:?} ({:.0} t/s)",
                start.elapsed(),
                applied as f64 / start.elapsed().as_secs_f64()
            );
        }
        return;
    }

    println!("== {which}, batch size {bs}, {} batches ==", batches.len());
    if which == "retailer" {
        decompose(&q, &batches[0].tuples);
    }
    for fast in [true, false] {
        let mut engine: IvmEngine<f64> =
            IvmEngine::new(q.clone(), tree.clone(), &all, lifts.clone());
        engine.set_fast_path(fast);
        let label = if fast { "fast" } else { "general" };
        // Deltas are pre-built so the timings track `IvmEngine::apply`
        // itself (the PR 1 smoke protocol).
        let deltas: Vec<(usize, usize, Delta<f64>)> = batches
            .iter()
            .map(|b| {
                (
                    b.relation,
                    b.tuples.len(),
                    ones_delta(q.relations[b.relation].schema.clone(), &b.tuples),
                )
            })
            .collect();
        let start = Instant::now();
        let mut applied = 0usize;
        let mut per_rel = vec![(0usize, std::time::Duration::ZERO); q.relations.len()];
        for (rel, n, d) in &deltas {
            let t0 = Instant::now();
            engine.apply(*rel, d);
            applied += n;
            per_rel[*rel].0 += n;
            per_rel[*rel].1 += t0.elapsed();
            if start.elapsed().as_secs() > 20 {
                println!("  [{label}] ...timeout");
                break;
            }
        }
        for (rel, (n, dt)) in per_rel.iter().enumerate() {
            if *n > 0 {
                println!(
                    "  [{label}] rel {rel} ({}): {n} tuples in {:?} ({:.0} t/s)",
                    q.relations[rel].name,
                    dt,
                    *n as f64 / dt.as_secs_f64().max(1e-9)
                );
            }
        }
        println!(
            "  [{label}] TOTAL {applied} tuples in {:?} ({:.0} t/s)\n",
            start.elapsed(),
            applied as f64 / start.elapsed().as_secs_f64()
        );
    }
}

/// Break the shared per-batch cost into its components: delta
/// construction, a bare primary-map merge, and a merge maintaining a
/// `[ksn]`-style secondary index.
#[allow(dead_code)]
fn decompose(q: &QueryDef, tuples: &[Tuple]) {
    let schema = q.relations[0].schema.clone();
    let t0 = Instant::now();
    let d = match ones_delta(schema.clone(), tuples) {
        Delta::Flat(r) => r,
        _ => unreachable!(),
    };
    println!("  delta construction: {:?}", t0.elapsed());

    let mut store: ViewStore<f64> = ViewStore::new(schema.clone());
    let t0 = Instant::now();
    let mut tr = Vec::new();
    store.merge_into(&d, &mut tr);
    println!("  bare store merge:   {:?}", t0.elapsed());

    // Raw TupleMap fills: source order vs the delta table's iteration
    // order (isolates hash-order-correlated insertion).
    let t0 = Instant::now();
    let mut m = fivm::core::TupleMap::<f64>::new();
    for t in tuples {
        *m.upsert(t, || 0.0).1 += 1.0;
    }
    println!(
        "  raw fill (vec order):   {:?} ({} keys)",
        t0.elapsed(),
        m.len()
    );
    let t0 = Instant::now();
    let mut m = fivm::core::TupleMap::<f64>::new();
    for (t, p) in d.iter() {
        *m.upsert(t, || 0.0).1 += *p;
    }
    println!(
        "  raw fill (table order): {:?} ({} keys)",
        t0.elapsed(),
        m.len()
    );

    let mut store: ViewStore<f64> = ViewStore::new(schema.clone());
    store.ensure_index(&Schema::new(vec![q.catalog.lookup("ksn").unwrap()]));
    let t0 = Instant::now();
    let mut tr = Vec::new();
    store.merge_into(&d, &mut tr);
    println!("  indexed store merge:{:?}", t0.elapsed());
}
