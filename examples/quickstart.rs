//! Quickstart: the paper’s running example (Example 1.1).
//!
//! Maintains
//!
//! ```sql
//! SELECT S.A, S.C, SUM(R.B * T.D * S.E)
//! FROM R NATURAL JOIN S NATURAL JOIN T
//! GROUP BY S.A, S.C;
//! ```
//!
//! under inserts and deletes to all three relations, and shows that the
//! maintained result always equals recomputation from scratch.
//!
//! Run with: `cargo run --release --example quickstart`

use fivm::prelude::*;
use fivm::tuple;

fn main() {
    // The query: R(A,B) ⋈ S(A,C,E) ⋈ T(C,D), group by (A, C).
    let q = QueryDef::example_rst(&["A", "C"]);
    // The Figure 2a variable order; `auto` would pick a valid one too.
    let vo = VariableOrder::parse("A - { C - { B, D, E } }", &q.catalog);
    let tree = ViewTree::build(&q, &vo);
    println!("View tree:\n{}", tree.render(&q));

    // SUM(B * D * E): lift those variables to themselves, in f64.
    let mut lifts: LiftingMap<f64> = LiftingMap::new();
    for var in ["B", "D", "E"] {
        lifts.set(
            q.catalog.lookup(var).unwrap(),
            Lifting::from_fn(|v: &Value| v.as_f64().unwrap()),
        );
    }

    // Materialize for updates to all three relations.
    let mut engine: IvmEngine<f64> =
        IvmEngine::new(q.clone(), tree.clone(), &[0, 1, 2], lifts.clone());
    println!(
        "{} views materialized (µ, Figure 5)",
        engine.plan().stored_count()
    );

    // A little database, streamed tuple by tuple.
    let r_rows = [(1, 10), (1, 20), (2, 5)];
    let s_rows = [(1, 1, 2), (1, 2, 3), (2, 1, 4)];
    let t_rows = [(1, 7), (2, 9)];
    let mut db = Database::<f64>::empty(&q);
    for &(a, b) in &r_rows {
        apply_insert(&mut engine, &mut db, &q, 0, tuple![a, b]);
    }
    for &(a, c, e) in &s_rows {
        apply_insert(&mut engine, &mut db, &q, 1, tuple![a, c, e]);
    }
    for &(c, d) in &t_rows {
        apply_insert(&mut engine, &mut db, &q, 2, tuple![c, d]);
    }

    println!("\nResult after inserts (A, C) → SUM(B·D·E):");
    for (key, sum) in engine.result().sorted() {
        println!("  {key} → {sum}");
    }

    // Check against recomputation from scratch.
    let recomputed = eval_tree(&tree, &db, &lifts);
    assert_eq!(engine.result(), recomputed);
    println!("✓ matches recomputation");

    // A deletion is an insert with a negated payload (paper §2).
    let delete = Relation::from_pairs(q.relations[0].schema.clone(), [(tuple![1, 20], -1.0f64)]);
    engine.apply(0, &Delta::Flat(delete.clone()));
    db.relations[0].union_in_place(&delete);
    println!("\nAfter deleting R(1, 20):");
    for (key, sum) in engine.result().sorted() {
        println!("  {key} → {sum}");
    }
    assert_eq!(engine.result(), eval_tree(&tree, &db, &lifts));
    println!("✓ matches recomputation");
}

fn apply_insert(
    engine: &mut IvmEngine<f64>,
    db: &mut Database<f64>,
    q: &QueryDef,
    rel: usize,
    t: Tuple,
) {
    let d = Relation::from_pairs(q.relations[rel].schema.clone(), [(t, 1.0f64)]);
    engine.apply(rel, &Delta::Flat(d.clone()));
    db.relations[rel].union_in_place(&d);
}
