//! Cyclic queries with indicator projections (paper Appendix B,
//! Figure 13): maintain the triangle count and the degree-3 cofactor
//! matrix over `R(A,B) ⋈ S(B,C) ⋈ T(C,A)` under updates to all three
//! relations, with and without the indicator projection `∃_{A,B} R`
//! that bounds the quadratic `S ⋈ T` view.
//!
//! Run with: `cargo run --release --example triangle_cofactor`

use fivm::data::twitter::{self, TwitterConfig};
use fivm::engine::memory::format_bytes;
use fivm::prelude::*;
use std::time::Instant;

fn main() {
    let cfg = TwitterConfig {
        edges: 9_000,
        nodes: 700,
        ..Default::default()
    };
    let t = twitter::generate(&cfg);
    let q = t.query.clone();
    println!(
        "triangle query over a random graph: {} edges split into R, S, T",
        cfg.edges
    );

    // Plain view tree vs indicator-extended view tree.
    let plain = ViewTree::build(&q, &t.order);
    let mut with_ind = plain.clone();
    let added = add_indicators(&mut with_ind, &q);
    println!(
        "indicator projections added: {} ({})",
        added.len(),
        added
            .iter()
            .map(|&id| match &with_ind.nodes[id].kind {
                NodeKind::Indicator { rel, proj } =>
                    format!("∃{} {}", q.catalog.render(proj), q.relations[*rel].name),
                _ => unreachable!(),
            })
            .collect::<Vec<_>>()
            .join(", ")
    );

    let updatable = [0usize, 1, 2];
    // COUNT ring: triangle counting.
    let run = |tree: &ViewTree, label: &str| {
        let mut engine: IvmEngine<i64> =
            IvmEngine::new(q.clone(), tree.clone(), &updatable, LiftingMap::new());
        let t0 = Instant::now();
        for batch in t.stream(1000) {
            let schema = q.relations[batch.relation].schema.clone();
            let delta = Relation::from_pairs(schema, batch.tuples.into_iter().map(|x| (x, 1i64)));
            engine.apply(batch.relation, &Delta::Flat(delta));
        }
        let elapsed = t0.elapsed();
        let count = engine.result().payload(&Tuple::unit());
        println!(
            "  {label:<18} triangles={count:<8} time={elapsed:>9.2?} memory={}",
            format_bytes(engine.approx_bytes())
        );
        (count, engine.approx_bytes())
    };
    println!("\ntriangle counting (Z ring):");
    let (c1, m1) = run(&plain, "plain tree");
    let (c2, m2) = run(&with_ind, "with indicator");
    assert_eq!(c1, c2, "indicators must not change the result");
    println!(
        "  → same count, indicator bounds the S⋈T view: {:.2}x memory",
        m1 as f64 / m2 as f64
    );

    // Degree-3 cofactor ring over the same tree: one model over (A,B,C).
    println!("\ncofactor matrix over the triangle (degree-3 matrix ring):");
    let spec = CofactorSpec::over_all_vars(&q);
    let mut engine: IvmEngine<Cofactor> =
        IvmEngine::new(q.clone(), with_ind.clone(), &updatable, spec.liftings());
    let t0 = Instant::now();
    for batch in t.stream(1000) {
        let schema = q.relations[batch.relation].schema.clone();
        let delta = Relation::from_pairs(
            schema,
            batch.tuples.into_iter().map(|x| (x, Cofactor::one())),
        );
        engine.apply(batch.relation, &Delta::Flat(delta));
    }
    let (c, s, qm) = spec.extract(&engine.result());
    println!(
        "  maintained in {:?}: count={c}, SUM(A)={:.0}, SUM(A·B)={:.0}",
        t0.elapsed(),
        s[0],
        qm[1]
    );
    assert_eq!(c, c1, "count aggregate equals the triangle count");
    println!("✓ one view tree, two rings — same maintenance machinery");
}
