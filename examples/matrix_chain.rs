//! Incremental matrix chain multiplication (paper §6.1, Figure 6):
//! maintain `A = A₁·A₂·A₃` under one-row (rank-1) updates to `A₂`,
//! comparing F-IVM’s factorized O(n²) propagation against 1-IVM’s O(n³)
//! matrix products and full re-evaluation — in both the dense runtime
//! and the hash-relation runtime of the generic engine.
//!
//! Run with: `cargo run --release --example matrix_chain`

use fivm::data::matrices;
use fivm::linalg::{DenseChainIvm, FirstOrderChain, Matrix, ReEvalChain};
use fivm::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    let n = 192;
    let k = 3;
    println!("chain of {k} random {n}×{n} matrices; one-row updates to A2\n");
    let chain = matrices::random_chain(k, n, 42);
    let dense: Vec<Matrix> = chain
        .iter()
        .map(|d| Matrix::from_fn(n, n, |i, j| d[i * n + j]))
        .collect();

    let mut rng = SmallRng::seed_from_u64(7);
    let updates: Vec<(Vec<f64>, Vec<f64>)> = (0..10)
        .map(|i| matrices::one_row_update(n, (i * 13) % n, &mut rng))
        .collect();

    // ---- dense runtime (the paper’s “Octave” column) ----
    let mut fivm = DenseChainIvm::new(dense.clone());
    let mut foivm = FirstOrderChain::new(dense.clone());
    let mut reev = ReEvalChain::new(dense);

    let time = |f: &mut dyn FnMut()| {
        let t = Instant::now();
        f();
        t.elapsed()
    };
    let t_f = time(&mut || {
        for (u, v) in &updates {
            fivm.apply_rank1(1, u, v);
        }
    });
    let t_1 = time(&mut || {
        for (u, v) in &updates {
            let mut d = Matrix::zeros(n, n);
            d.add_outer(u, v);
            foivm.apply(1, &d);
        }
    });
    let t_r = time(&mut || {
        for (u, v) in &updates {
            let mut d = Matrix::zeros(n, n);
            d.add_outer(u, v);
            reev.apply(1, &d);
        }
    });
    assert!(fivm.product().approx_eq(foivm.product(), 1e-6));
    assert!(fivm.product().approx_eq(reev.product(), 1e-6));
    println!("dense runtime, {} updates:", updates.len());
    println!("  F-IVM (factorized, O(n²))  {t_f:?}");
    println!(
        "  1-IVM (δA=A1·δA2·A3, O(n³)) {t_1:?}  ({:.1}x)",
        ratio(t_1, t_f)
    );
    println!(
        "  RE-EVAL (full product)      {t_r:?}  ({:.1}x)",
        ratio(t_r, t_f)
    );

    // ---- hash-relation runtime: the generic engine over the chain
    //      query with factored deltas (the same code path as any other
    //      F-IVM query!) ----
    let q = matrices::chain_query(k);
    let vo = VariableOrder::parse("X1 - X4 - X3 - X2", &q.catalog);
    let tree = ViewTree::build(&q, &vo);
    let mut engine: IvmEngine<f64> = IvmEngine::new(q.clone(), tree, &[1], LiftingMap::new());
    let mut db = Database::<f64>::empty(&q);
    for (i, d) in chain.iter().enumerate() {
        db.relations[i] = matrices::matrix_relation(d, n, q.relations[i].schema.clone());
    }
    engine.load(&db);

    let x2 = Schema::new(vec![q.catalog.lookup("X2").unwrap()]);
    let x3 = Schema::new(vec![q.catalog.lookup("X3").unwrap()]);
    let t_h = Instant::now();
    for (u, v) in &updates {
        let du = matrices::vector_relation(u, x2.clone());
        let dv = matrices::vector_relation(v, x3.clone());
        engine.apply(1, &Delta::factored(vec![du, dv]));
    }
    let t_h = t_h.elapsed();
    println!("\nhash-relation runtime (generic engine, factored deltas): {t_h:?}");

    // cross-validate the two runtimes
    let result = engine.result();
    let mut max_diff = 0.0f64;
    for ((t, p), _) in result.sorted().iter().zip(0..) {
        let (i, j) = (
            t.get(0).as_int().unwrap() as usize,
            t.get(1).as_int().unwrap() as usize,
        );
        max_diff = max_diff.max((p - fivm.product().get(i, j)).abs());
    }
    println!("max |dense − hash| over non-zero cells: {max_diff:.2e}");
    assert!(max_diff < 1e-6);
    println!("✓ both runtimes maintain the same product");
}

fn ratio(a: std::time::Duration, b: std::time::Duration) -> f64 {
    a.as_secs_f64() / b.as_secs_f64().max(1e-12)
}
